(* The modeled system-call table.

   Each entry gives the call's kernel-op program: which locks it takes,
   which software caches it probes, whether it broadcasts IPIs, and how
   much raw in-kernel CPU it burns.  Holds and costs are calibrated so
   that single-tenant medians land in the 200ns–100µs range the paper's
   Table 2 reports for native Linux, with argument sensitivity (transfer
   sizes select different path lengths, flags select e.g. sync vs
   buffered variants).

   The building-block helpers below are shared; individual entries vary
   the parameters, so no two calls execute an identical program unless
   the real kernel's paths are also near-identical (e.g. getuid/getgid). *)

open Ksurf_kernel.Ops
module Category = Ksurf_kernel.Category
module Dist = Ksurf_util.Dist

let h median sigma = Dist.lognormal ~median ~sigma

(* --- shared path fragments ------------------------------------------- *)

(* Path resolution: one dcache probe per component. *)
let path_walk depth = List.init depth (fun _ -> Dcache_lookup)

(* File-descriptor table lookup (RCU-protected, cheap). *)
let fd_lookup = Cpu 70.0

(* Copying [size] bytes between user and kernel space (~16 GB/s). *)
let copy_cost size = Cpu (40.0 +. (0.062 *. float_of_int size))

(* Page-cache traffic for a [size]-byte transfer: probe up to four pages
   explicitly (events are expensive), account the rest as CPU. *)
let page_cache_io size =
  let pages = max 1 ((size + 4095) / 4096) in
  let probes = min pages 4 in
  List.init probes (fun _ -> Page_cache_lookup)
  @ if pages > probes then [ Cpu (float_of_int (pages - probes) *. 55.0) ] else []

(* Credential check on permission-sensitive paths. *)
let cred_check = Cpu 45.0

(* Audit-record emission: serialised on the audit lock.  Formatting and
   queueing the record is microseconds of work, so convoys of concurrent
   permission calls on a big instance stretch into the milliseconds. *)
let audit_record = Lock (Audit, h 8_000.0 0.8)

(* Scheduler wakeup/dequeue on the caller's runqueue. *)
let rq_op hold = Lock (Runqueue, h hold 0.35)

(* Global task-list / pid-table critical section. *)
let tasklist_op hold = Lock (Tasklist, h hold 0.4)

(* Inode mutation under the striped inode lock. *)
let inode_op hold = Lock (Inode, h hold 0.4)

(* Journalled metadata update: dirties the journal under its lock. *)
let journal_op hold = Lock (Journal, h hold 0.5)

(* Journalled inode update: the transaction handle is opened while the
   inode lock is held, as ext4's sequence does — the inode -> journal
   lock-order edge every journalled write path exhibits. *)
let journalled_inode_op ~inode ~journal =
  With_lock (Inode, h inode 0.4, [ journal_op journal ])

(* Directory-namespace mutation: the dcache (rename/namespace) lock is
   held across the victim's inode lock, rename_lock-style — the
   dcache -> inode edge. *)
let namespace_op ~dcache ~inode =
  With_lock (Dcache, h dcache 0.4, [ inode_op inode ])

let spec = Spec.make

(* ====================================================================
   (a) Process management / scheduling
   ==================================================================== *)

let process_specs =
  [
    spec ~name:"fork" ~number:57 ~categories:[ Category.Process ]
      ~doc:"duplicate the calling process" (fun _ ->
        [
          Cpu 9_000.0; (* copy mm/files/signal structs *)
          Slab_alloc;
          Slab_alloc;
          tasklist_op 900.0;
          Page_alloc 2;
          rq_op 250.0;
          Cgroup_charge;
        ]);
    spec ~name:"vfork" ~number:58 ~categories:[ Category.Process ]
      ~doc:"create child sharing the parent's memory" (fun _ ->
        [ Cpu 4_500.0; Slab_alloc; tasklist_op 700.0; rq_op 250.0; Cgroup_charge ]);
    spec ~name:"clone" ~number:56 ~categories:[ Category.Process ]
      ~arg_model:(Arg.objected ~max_flags:8 4)
      ~doc:"create a child process or thread with shared resources"
      (fun arg ->
        let share_vm = arg.Arg.flags land 1 = 1 in
        [
          Cpu (if share_vm then 3_000.0 else 8_000.0);
          Slab_alloc;
          tasklist_op 800.0;
          rq_op 250.0;
          Cgroup_charge;
        ]);
    spec ~name:"execve" ~number:59 ~categories:[ Category.Process ]
      ~arg_model:(Arg.objected 8)
      ~doc:"execute a program, replacing the address space" (fun _ ->
        path_walk 3
        @ [
            Cpu 25_000.0; (* load + relocate *)
            Write_lock (Mmap_sem, h 1_500.0 0.4);
            Page_alloc 3;
            Tlb_shootdown; (* old address space torn down *)
            tasklist_op 600.0;
            Cgroup_charge;
          ]);
    spec ~name:"exit_group" ~number:231 ~categories:[ Category.Process ]
      ~doc:"terminate all threads in the process" (fun _ ->
        [
          Cpu 5_000.0;
          tasklist_op 800.0;
          Rcu_sync; (* task struct freed after grace period *)
          rq_op 300.0;
        ]);
    spec ~name:"wait4" ~number:61 ~categories:[ Category.Process ]
      ~doc:"wait for a child to change state" (fun _ ->
        [ tasklist_op 400.0; Sleep (h 12_000.0 0.8); rq_op 220.0 ]);
    spec ~name:"waitid" ~number:247 ~categories:[ Category.Process ]
      ~doc:"wait for a child matching an id selector" (fun _ ->
        [ tasklist_op 450.0; Sleep (h 12_000.0 0.8); rq_op 220.0 ]);
    spec ~name:"getpid" ~number:39 ~categories:[ Category.Process ]
      ~doc:"return the caller's process id" (fun _ -> [ Cpu 60.0 ]);
    spec ~name:"getppid" ~number:110 ~categories:[ Category.Process ]
      ~doc:"return the parent's process id" (fun _ -> [ Cpu 70.0 ]);
    spec ~name:"gettid" ~number:186 ~categories:[ Category.Process ]
      ~doc:"return the caller's thread id" (fun _ -> [ Cpu 55.0 ]);
    spec ~name:"sched_yield" ~number:24 ~categories:[ Category.Process ]
      ~doc:"relinquish the CPU" (fun _ -> [ rq_op 300.0 ]);
    spec ~name:"sched_setaffinity" ~number:203 ~categories:[ Category.Process ]
      ~doc:"pin a task to a CPU set" (fun _ ->
        [ tasklist_op 350.0; rq_op 500.0; Rcu_sync ]);
    spec ~name:"sched_getaffinity" ~number:204 ~categories:[ Category.Process ]
      ~doc:"read a task's CPU mask" (fun _ -> [ tasklist_op 200.0; Cpu 120.0 ]);
    spec ~name:"sched_setscheduler" ~number:144 ~categories:[ Category.Process; Category.Perm ]
      ~doc:"set scheduling policy and priority" (fun _ ->
        [ cred_check; tasklist_op 350.0; rq_op 600.0 ]);
    spec ~name:"sched_getscheduler" ~number:145 ~categories:[ Category.Process ]
      ~doc:"read a task's scheduling policy" (fun _ -> [ tasklist_op 180.0 ]);
    spec ~name:"sched_setparam" ~number:142 ~categories:[ Category.Process ]
      ~doc:"set scheduling parameters" (fun _ -> [ tasklist_op 300.0; rq_op 450.0 ]);
    spec ~name:"sched_getparam" ~number:143 ~categories:[ Category.Process ]
      ~doc:"read scheduling parameters" (fun _ -> [ tasklist_op 180.0 ]);
    spec ~name:"sched_get_priority_max" ~number:146 ~categories:[ Category.Process ]
      ~doc:"max static priority of a policy" (fun _ -> [ Cpu 65.0 ]);
    spec ~name:"nanosleep" ~number:35 ~categories:[ Category.Process ]
      ~arg_model:(Arg.sized [| 1000; 10_000; 100_000 |])
      ~doc:"high-resolution sleep" (fun arg ->
        [
          Cpu 400.0;
          Sleep (Dist.shifted (float_of_int arg.Arg.size) (h 2_000.0 0.6));
          rq_op 280.0;
        ]);
    spec ~name:"kill" ~number:62 ~categories:[ Category.Process; Category.Ipc ]
      ~doc:"send a signal to a process" (fun _ ->
        [ cred_check; tasklist_op 400.0; rq_op 300.0 ]);
    spec ~name:"tgkill" ~number:234 ~categories:[ Category.Process; Category.Ipc ]
      ~doc:"send a signal to a specific thread" (fun _ ->
        [ cred_check; tasklist_op 380.0; rq_op 300.0 ]);
    spec ~name:"rt_sigaction" ~number:13 ~categories:[ Category.Process ]
      ~doc:"install a signal handler" (fun _ -> [ Cpu 250.0; tasklist_op 200.0 ]);
    spec ~name:"rt_sigprocmask" ~number:14 ~categories:[ Category.Process ]
      ~doc:"alter the blocked-signal mask" (fun _ -> [ Cpu 150.0 ]);
    spec ~name:"rt_sigpending" ~number:127 ~categories:[ Category.Process ]
      ~doc:"inspect pending signals" (fun _ -> [ Cpu 130.0 ]);
    spec ~name:"sigaltstack" ~number:131 ~categories:[ Category.Process ]
      ~doc:"set the alternate signal stack" (fun _ -> [ Cpu 160.0 ]);
    spec ~name:"setpriority" ~number:141 ~categories:[ Category.Process ]
      ~doc:"set a task's nice value" (fun _ ->
        [ cred_check; tasklist_op 350.0; rq_op 400.0 ]);
    spec ~name:"getpriority" ~number:140 ~categories:[ Category.Process ]
      ~doc:"read a task's nice value" (fun _ -> [ tasklist_op 180.0 ]);
    spec ~name:"prctl" ~number:157 ~categories:[ Category.Process ]
      ~arg_model:(Arg.objected ~max_flags:8 1)
      ~doc:"process-specific operations" (fun arg ->
        [ Cpu (180.0 +. (float_of_int arg.Arg.flags *. 60.0)); tasklist_op 250.0 ]);
    spec ~name:"getrusage" ~number:98 ~categories:[ Category.Process ]
      ~doc:"resource usage of the caller or children" (fun _ ->
        [ tasklist_op 300.0; Cpu 400.0 ]);
    spec ~name:"times" ~number:100 ~categories:[ Category.Process ]
      ~doc:"process CPU times" (fun _ -> [ Cpu 220.0 ]);
    spec ~name:"setsid" ~number:112 ~categories:[ Category.Process ]
      ~doc:"create a new session" (fun _ -> [ tasklist_op 500.0 ]);
    spec ~name:"setpgid" ~number:109 ~categories:[ Category.Process ]
      ~doc:"move a process to a process group" (fun _ -> [ tasklist_op 450.0 ]);
    spec ~name:"getpgid" ~number:121 ~categories:[ Category.Process ]
      ~doc:"read a process's group id" (fun _ -> [ tasklist_op 180.0 ]);
    spec ~name:"personality" ~number:135 ~categories:[ Category.Process ]
      ~doc:"set the execution domain" (fun _ -> [ Cpu 110.0 ]);
    spec ~name:"uname" ~number:63 ~categories:[ Category.Process ]
      ~doc:"system identification" (fun _ -> [ Cpu 180.0 ]);
  ]

(* ====================================================================
   (b) Memory management
   ==================================================================== *)

let memory_specs =
  [
    spec ~name:"mmap" ~number:9 ~categories:[ Category.Memory ] ~arg_model:Arg.io
      ~doc:"map anonymous or file-backed memory" (fun arg ->
        let pages = max 1 (arg.Arg.size / 4096) in
        [
          Write_lock (Mmap_sem, h 600.0 0.4);
          Slab_alloc; (* vma *)
          Cpu (120.0 +. (float_of_int (min pages 32) *. 12.0));
          Cgroup_charge;
        ]);
    spec ~name:"munmap" ~number:11 ~categories:[ Category.Memory ] ~arg_model:Arg.io
      ~doc:"unmap a memory region and flush stale TLB entries" (fun arg ->
        let pages = max 1 (arg.Arg.size / 4096) in
        [
          Write_lock (Mmap_sem, h 700.0 0.4);
          Cpu (float_of_int (min pages 64) *. 30.0);
          Tlb_shootdown;
          Lock (Zone, h 250.0 0.4); (* free pages to the buddy *)
        ]);
    spec ~name:"mremap" ~number:25 ~categories:[ Category.Memory ] ~arg_model:Arg.io
      ~doc:"grow, shrink or move a mapping" (fun arg ->
        [
          Write_lock (Mmap_sem, h 800.0 0.4);
          Cpu (200.0 +. (float_of_int (min arg.Arg.size 65536) *. 0.02));
          Tlb_shootdown;
          Page_alloc 1;
        ]);
    spec ~name:"mprotect" ~number:10 ~categories:[ Category.Memory ] ~arg_model:Arg.io
      ~doc:"change page protections" (fun arg ->
        let pages = max 1 (arg.Arg.size / 4096) in
        [
          Write_lock (Mmap_sem, h 500.0 0.4);
          Cpu (float_of_int (min pages 64) *. 18.0);
          Tlb_shootdown;
        ]);
    spec ~name:"brk" ~number:12 ~categories:[ Category.Memory ]
      ~arg_model:(Arg.sized [| 4096; 65536; 262144 |])
      ~doc:"adjust the program break" (fun arg ->
        [
          Write_lock (Mmap_sem, h 450.0 0.4);
          Page_alloc (if arg.Arg.size > 65536 then 4 else 1);
          Cgroup_charge;
        ]);
    spec ~name:"madvise" ~number:28 ~categories:[ Category.Memory ]
      ~arg_model:{ Arg.sizes = [| 4096; 65536; 1 lsl 20 |]; max_obj = 1; max_flags = 4 }
      ~doc:"advise the kernel about memory usage" (fun arg ->
        let dontneed = arg.Arg.flags = 1 in
        if dontneed then
          (* MADV_DONTNEED frees pages and must invalidate TLBs. *)
          [
            Read_lock (Mmap_sem, h 350.0 0.3);
            Cpu (float_of_int (min (arg.Arg.size / 4096) 64) *. 25.0);
            Tlb_shootdown;
            Lock (Zone, h 220.0 0.4);
          ]
        else [ Read_lock (Mmap_sem, h 300.0 0.3); Cpu 180.0 ]);
    spec ~name:"mlock" ~number:149 ~categories:[ Category.Memory; Category.Perm ]
      ~arg_model:(Arg.sized [| 4096; 65536 |])
      ~doc:"lock pages into RAM" (fun arg ->
        [
          cred_check;
          Write_lock (Mmap_sem, h 500.0 0.4);
          Cpu (float_of_int (max 1 (arg.Arg.size / 4096)) *. 40.0);
          Lock (Zone, h 300.0 0.4);
        ]);
    spec ~name:"munlock" ~number:150 ~categories:[ Category.Memory ]
      ~arg_model:(Arg.sized [| 4096; 65536 |])
      ~doc:"unlock pages" (fun arg ->
        [
          Write_lock (Mmap_sem, h 450.0 0.4);
          Cpu (float_of_int (max 1 (arg.Arg.size / 4096)) *. 30.0);
        ]);
    spec ~name:"mlockall" ~number:151 ~categories:[ Category.Memory; Category.Perm ]
      ~doc:"lock the whole address space" (fun _ ->
        [ cred_check; Write_lock (Mmap_sem, h 900.0 0.4); Cpu 3_000.0; Lock (Zone, h 500.0 0.4) ]);
    spec ~name:"munlockall" ~number:152 ~categories:[ Category.Memory ]
      ~doc:"unlock the whole address space" (fun _ ->
        [ Write_lock (Mmap_sem, h 700.0 0.4); Cpu 2_000.0 ]);
    spec ~name:"msync" ~number:26 ~categories:[ Category.Memory; Category.File_io ]
      ~arg_model:Arg.io ~doc:"flush a mapped region to its file" (fun arg ->
        [
          Read_lock (Mmap_sem, h 400.0 0.3);
          Block_io { bytes = min arg.Arg.size 262144; write = true };
          Tlb_shootdown; (* write-protect clean pages *)
        ]);
    spec ~name:"mincore" ~number:27 ~categories:[ Category.Memory ]
      ~arg_model:(Arg.sized [| 4096; 65536; 1 lsl 20 |])
      ~doc:"residency of pages in core" (fun arg ->
        [
          Read_lock (Mmap_sem, h 300.0 0.3);
          Cpu (float_of_int (max 1 (arg.Arg.size / 4096)) *. 8.0);
        ]);
    spec ~name:"memfd_create" ~number:319 ~categories:[ Category.Memory; Category.Fs_mgmt ]
      ~doc:"anonymous memory-backed file" (fun _ ->
        [ Slab_alloc; inode_op 400.0; Cpu 600.0 ]);
    spec ~name:"mbind" ~number:237 ~categories:[ Category.Memory ]
      ~arg_model:(Arg.sized [| 65536; 1 lsl 20 |])
      ~doc:"set the NUMA policy of a range" (fun _ ->
        [ Write_lock (Mmap_sem, h 600.0 0.4); Cpu 900.0 ]);
    spec ~name:"migrate_pages" ~number:256 ~categories:[ Category.Memory ]
      ~doc:"move a process's pages across NUMA nodes" (fun _ ->
        [
          tasklist_op 350.0;
          Write_lock (Mmap_sem, h 1_000.0 0.4);
          Page_alloc 4;
          Cpu 15_000.0;
          Tlb_shootdown;
        ]);
    spec ~name:"remap_file_pages" ~number:216 ~categories:[ Category.Memory ]
      ~doc:"rearrange a file mapping (legacy)" (fun _ ->
        [ Write_lock (Mmap_sem, h 700.0 0.4); Cpu 800.0; Tlb_shootdown ]);
    spec ~name:"get_mempolicy" ~number:239 ~categories:[ Category.Memory ]
      ~doc:"read the NUMA memory policy" (fun _ ->
        [ Read_lock (Mmap_sem, h 250.0 0.3); Cpu 200.0 ]);
    spec ~name:"set_mempolicy" ~number:238 ~categories:[ Category.Memory ]
      ~doc:"set the NUMA memory policy" (fun _ ->
        [ Write_lock (Mmap_sem, h 350.0 0.3); Cpu 300.0 ]);
  ]

(* ====================================================================
   (c) File I/O
   ==================================================================== *)

let file_io_specs =
  [
    spec ~name:"read" ~number:0 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"read from a file descriptor through the page cache" (fun arg ->
        (fd_lookup :: page_cache_io arg.Arg.size) @ [ copy_cost arg.Arg.size ]);
    spec ~name:"write" ~number:1 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"buffered write to a file descriptor" (fun arg ->
        let sync = arg.Arg.flags = 3 (* O_SYNC variant *) in
        (fd_lookup :: copy_cost arg.Arg.size :: page_cache_io arg.Arg.size)
        @ [ Cgroup_charge ]
        @ if sync then [ Block_io { bytes = arg.Arg.size; write = true } ] else []);
    spec ~name:"pread64" ~number:17 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"positional read" (fun arg ->
        (fd_lookup :: Cpu 60.0 :: page_cache_io arg.Arg.size)
        @ [ copy_cost arg.Arg.size ]);
    spec ~name:"pwrite64" ~number:18 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"positional write" (fun arg ->
        (fd_lookup :: Cpu 60.0 :: copy_cost arg.Arg.size :: page_cache_io arg.Arg.size)
        @ [ Cgroup_charge ]);
    spec ~name:"readv" ~number:19 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"scatter read into multiple buffers" (fun arg ->
        (fd_lookup :: Cpu 150.0 :: page_cache_io arg.Arg.size)
        @ [ copy_cost arg.Arg.size ]);
    spec ~name:"writev" ~number:20 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"gather write from multiple buffers" (fun arg ->
        (fd_lookup :: Cpu 150.0 :: copy_cost arg.Arg.size :: page_cache_io arg.Arg.size)
        @ [ Cgroup_charge ]);
    spec ~name:"preadv" ~number:295 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"positional scatter read" (fun arg ->
        (fd_lookup :: Cpu 180.0 :: page_cache_io arg.Arg.size)
        @ [ copy_cost arg.Arg.size ]);
    spec ~name:"pwritev" ~number:296 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"positional gather write" (fun arg ->
        (fd_lookup :: Cpu 180.0 :: copy_cost arg.Arg.size :: page_cache_io arg.Arg.size)
        @ [ Cgroup_charge ]);
    spec ~name:"lseek" ~number:8 ~categories:[ Category.File_io ]
      ~doc:"reposition a file offset" (fun _ -> [ fd_lookup; Cpu 60.0 ]);
    spec ~name:"fsync" ~number:74 ~categories:[ Category.File_io; Category.Fs_mgmt ]
      ~arg_model:Arg.io ~doc:"flush file data and metadata to disk" (fun arg ->
        [
          fd_lookup;
          Block_io { bytes = max 4096 (min arg.Arg.size 262144); write = true };
          journal_op 900.0;
        ]);
    spec ~name:"fdatasync" ~number:75 ~categories:[ Category.File_io ]
      ~arg_model:Arg.io ~doc:"flush file data to disk" (fun arg ->
        [ fd_lookup; Block_io { bytes = max 4096 (min arg.Arg.size 262144); write = true } ]);
    spec ~name:"sendfile" ~number:40 ~categories:[ Category.File_io ] ~arg_model:Arg.io
      ~doc:"copy between descriptors inside the kernel" (fun arg ->
        (fd_lookup :: fd_lookup :: page_cache_io arg.Arg.size)
        @ [ Cpu (float_of_int arg.Arg.size *. 0.03) ]);
    spec ~name:"splice" ~number:275 ~categories:[ Category.File_io; Category.Ipc ]
      ~arg_model:Arg.io ~doc:"move data between a pipe and a descriptor" (fun arg ->
        (fd_lookup :: Lock (Pipe, h 300.0 0.4) :: page_cache_io (min arg.Arg.size 65536)));
    spec ~name:"tee" ~number:276 ~categories:[ Category.File_io; Category.Ipc ]
      ~arg_model:Arg.io ~doc:"duplicate pipe content without consuming" (fun arg ->
        [ fd_lookup; Lock (Pipe, h 280.0 0.4); Cpu (float_of_int (min arg.Arg.size 65536) *. 0.01) ]);
    spec ~name:"copy_file_range" ~number:326 ~categories:[ Category.File_io ]
      ~arg_model:Arg.io ~doc:"in-kernel file-to-file copy" (fun arg ->
        (fd_lookup :: fd_lookup :: page_cache_io arg.Arg.size)
        @ [ Cpu (float_of_int arg.Arg.size *. 0.04); Cgroup_charge ]);
    spec ~name:"fallocate" ~number:285 ~categories:[ Category.File_io; Category.Fs_mgmt ]
      ~arg_model:Arg.io ~doc:"preallocate file blocks" (fun arg ->
        [
          fd_lookup;
          journalled_inode_op ~inode:500.0 ~journal:600.0;
          Cpu (float_of_int (max 1 (arg.Arg.size / 4096)) *. 20.0);
        ]);
    spec ~name:"ftruncate" ~number:77 ~categories:[ Category.File_io; Category.Fs_mgmt ]
      ~doc:"truncate an open file" (fun _ ->
        [ fd_lookup; journalled_inode_op ~inode:500.0 ~journal:500.0;
          Page_cache_lookup ]);
    spec ~name:"sync_file_range" ~number:277 ~categories:[ Category.File_io ]
      ~arg_model:Arg.io ~doc:"flush a byte range of a file" (fun arg ->
        [ fd_lookup; Block_io { bytes = max 4096 (min arg.Arg.size 131072); write = true } ]);
    spec ~name:"readahead" ~number:187 ~categories:[ Category.File_io ]
      ~arg_model:Arg.io ~doc:"populate the page cache ahead of reads" (fun arg ->
        fd_lookup :: page_cache_io arg.Arg.size);
    spec ~name:"dup" ~number:32 ~categories:[ Category.File_io ]
      ~doc:"duplicate a file descriptor" (fun _ -> [ fd_lookup; Cpu 120.0; Slab_alloc ]);
    spec ~name:"dup2" ~number:33 ~categories:[ Category.File_io ]
      ~doc:"duplicate onto a specific descriptor" (fun _ -> [ fd_lookup; Cpu 150.0 ]);
    spec ~name:"dup3" ~number:292 ~categories:[ Category.File_io ]
      ~doc:"duplicate with flags" (fun _ -> [ fd_lookup; Cpu 160.0 ]);
    spec ~name:"fcntl" ~number:72 ~categories:[ Category.File_io ]
      ~arg_model:(Arg.objected ~max_flags:6 4)
      ~doc:"descriptor control operations" (fun arg ->
        let locking = arg.Arg.flags >= 4 (* F_SETLK-style *) in
        if locking then [ fd_lookup; inode_op 600.0; Cpu 300.0 ]
        else [ fd_lookup; Cpu 140.0 ]);
    spec ~name:"ioctl" ~number:16 ~categories:[ Category.File_io ]
      ~arg_model:(Arg.objected ~max_flags:8 4)
      ~doc:"device-specific control" (fun arg ->
        [ fd_lookup; Cpu (200.0 +. (float_of_int arg.Arg.flags *. 80.0)) ]);
    spec ~name:"poll" ~number:7 ~categories:[ Category.File_io; Category.Ipc ]
      ~arg_model:(Arg.objected ~max_flags:2 8)
      ~doc:"wait for events on descriptors" (fun arg ->
        [ Cpu (250.0 +. (float_of_int arg.Arg.obj *. 90.0)); Sleep (h 4_000.0 0.7); rq_op 220.0 ]);
    spec ~name:"select" ~number:23 ~categories:[ Category.File_io; Category.Ipc ]
      ~doc:"synchronous descriptor multiplexing" (fun _ ->
        [ Cpu 600.0; Sleep (h 4_500.0 0.7); rq_op 220.0 ]);
    spec ~name:"epoll_create1" ~number:291 ~categories:[ Category.File_io ]
      ~doc:"create an epoll instance" (fun _ -> [ Slab_alloc; Cpu 400.0 ]);
    spec ~name:"epoll_ctl" ~number:233 ~categories:[ Category.File_io ]
      ~doc:"add or remove a watched descriptor" (fun _ ->
        [ fd_lookup; Cpu 350.0; Slab_alloc ]);
    spec ~name:"epoll_wait" ~number:232 ~categories:[ Category.File_io; Category.Ipc ]
      ~doc:"wait for epoll events" (fun _ ->
        [ Cpu 300.0; Sleep (h 3_500.0 0.7); rq_op 220.0 ]);
    spec ~name:"eventfd2" ~number:290 ~categories:[ Category.File_io; Category.Ipc ]
      ~doc:"create an event counter descriptor" (fun _ -> [ Slab_alloc; Cpu 280.0 ]);
    spec ~name:"inotify_init1" ~number:294 ~categories:[ Category.File_io ]
      ~doc:"create an inotify instance" (fun _ -> [ Slab_alloc; Cpu 450.0 ]);
    spec ~name:"inotify_add_watch" ~number:254 ~categories:[ Category.File_io; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 8) ~doc:"watch a path for events" (fun _ ->
        path_walk 2 @ [ inode_op 450.0; Slab_alloc ]);
  ]

(* ====================================================================
   (d) Filesystem management
   ==================================================================== *)

let fs_mgmt_specs =
  [
    spec ~name:"open" ~number:2 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected ~max_flags:4 16)
      ~doc:"open a path, resolving each component" (fun arg ->
        let creat = arg.Arg.flags = 3 in
        path_walk (2 + (arg.Arg.obj mod 3))
        @ [ Slab_alloc; inode_op 300.0 ]
        @ if creat then [ journal_op 700.0 ] else []);
    spec ~name:"openat" ~number:257 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected ~max_flags:4 16)
      ~doc:"open relative to a directory descriptor" (fun arg ->
        (fd_lookup :: path_walk (1 + (arg.Arg.obj mod 3)))
        @ [ Slab_alloc; inode_op 300.0 ]);
    spec ~name:"creat" ~number:85 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a regular file" (fun _ ->
        path_walk 2 @ [ Slab_alloc; inode_op 400.0; journal_op 800.0 ]);
    spec ~name:"close" ~number:3 ~categories:[ Category.Fs_mgmt; Category.File_io ]
      ~doc:"close a descriptor (may release the inode)" (fun _ ->
        [ fd_lookup; Cpu 110.0; Rcu_sync ]);
    spec ~name:"stat" ~number:4 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"stat a path" (fun arg ->
        path_walk (2 + (arg.Arg.obj mod 2)) @ [ Cpu 200.0 ]);
    spec ~name:"fstat" ~number:5 ~categories:[ Category.Fs_mgmt ]
      ~doc:"stat an open descriptor" (fun _ -> [ fd_lookup; Cpu 180.0 ]);
    spec ~name:"lstat" ~number:6 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"stat without following symlinks" (fun arg ->
        path_walk (2 + (arg.Arg.obj mod 2)) @ [ Cpu 210.0 ]);
    spec ~name:"newfstatat" ~number:262 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"stat relative to a directory" (fun _ ->
        (fd_lookup :: path_walk 2) @ [ Cpu 200.0 ]);
    spec ~name:"statx" ~number:332 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"extended file status" (fun _ ->
        (fd_lookup :: path_walk 2) @ [ Cpu 260.0 ]);
    spec ~name:"access" ~number:21 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"check path accessibility" (fun _ ->
        path_walk 2 @ [ cred_check; Cpu 120.0 ]);
    spec ~name:"faccessat" ~number:269 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"check accessibility relative to a dirfd"
      (fun _ -> (fd_lookup :: path_walk 2) @ [ cred_check; Cpu 120.0 ]);
    spec ~name:"rename" ~number:82 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16)
      ~doc:"rename a path (two lookups, journalled)" (fun _ ->
        path_walk 2 @ path_walk 2
        @ [ namespace_op ~dcache:500.0 ~inode:500.0; journal_op 900.0 ]);
    spec ~name:"renameat2" ~number:316 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"rename with flags" (fun _ ->
        (fd_lookup :: (path_walk 2 @ path_walk 2))
        @ [ namespace_op ~dcache:500.0 ~inode:500.0; journal_op 900.0 ]);
    spec ~name:"mkdir" ~number:83 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a directory" (fun _ ->
        path_walk 2 @ [ Slab_alloc; inode_op 450.0; journal_op 850.0; Cgroup_charge ]);
    spec ~name:"mkdirat" ~number:258 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a directory relative to a dirfd"
      (fun _ ->
        (fd_lookup :: path_walk 1)
        @ [ Slab_alloc; inode_op 450.0; journal_op 850.0; Cgroup_charge ]);
    spec ~name:"rmdir" ~number:84 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"remove a directory" (fun _ ->
        path_walk 2 @ [ namespace_op ~dcache:450.0 ~inode:450.0; journal_op 800.0 ]);
    spec ~name:"unlink" ~number:87 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"remove a file link" (fun _ ->
        path_walk 2
        @ [ namespace_op ~dcache:400.0 ~inode:450.0; journal_op 750.0; Rcu_sync ]);
    spec ~name:"unlinkat" ~number:263 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"remove relative to a dirfd" (fun _ ->
        (fd_lookup :: path_walk 1)
        @ [ namespace_op ~dcache:400.0 ~inode:450.0; journal_op 750.0 ]);
    spec ~name:"link" ~number:86 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a hard link" (fun _ ->
        path_walk 2 @ path_walk 2 @ [ inode_op 500.0; journal_op 800.0 ]);
    spec ~name:"linkat" ~number:265 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"hard link relative to dirfds" (fun _ ->
        (fd_lookup :: (path_walk 1 @ path_walk 1)) @ [ inode_op 500.0; journal_op 800.0 ]);
    spec ~name:"symlink" ~number:88 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a symbolic link" (fun _ ->
        path_walk 2 @ [ Slab_alloc; inode_op 450.0; journal_op 800.0 ]);
    spec ~name:"symlinkat" ~number:266 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"symlink relative to a dirfd" (fun _ ->
        (fd_lookup :: path_walk 1) @ [ Slab_alloc; inode_op 450.0; journal_op 800.0 ]);
    spec ~name:"readlink" ~number:89 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"read a symlink target" (fun _ ->
        path_walk 2 @ [ Cpu 220.0 ]);
    spec ~name:"readlinkat" ~number:267 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"readlink relative to a dirfd" (fun _ ->
        (fd_lookup :: path_walk 1) @ [ Cpu 220.0 ]);
    spec ~name:"chdir" ~number:80 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"change working directory" (fun _ ->
        path_walk 2 @ [ Cpu 150.0 ]);
    spec ~name:"fchdir" ~number:81 ~categories:[ Category.Fs_mgmt ]
      ~doc:"change directory via descriptor" (fun _ -> [ fd_lookup; Cpu 130.0 ]);
    spec ~name:"getcwd" ~number:79 ~categories:[ Category.Fs_mgmt ]
      ~doc:"return the working directory path" (fun _ ->
        [ Lock (Dcache, h 250.0 0.3); Cpu 300.0 ]);
    spec ~name:"getdents64" ~number:217 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:Arg.io ~doc:"read directory entries" (fun arg ->
        (fd_lookup :: inode_op 350.0 :: page_cache_io (min arg.Arg.size 16384))
        @ [ copy_cost (min arg.Arg.size 16384) ]);
    spec ~name:"truncate" ~number:76 ~categories:[ Category.Fs_mgmt; Category.File_io ]
      ~arg_model:(Arg.objected 16) ~doc:"truncate a path" (fun _ ->
        path_walk 2
        @ [ journalled_inode_op ~inode:550.0 ~journal:600.0; Page_cache_lookup ]);
    spec ~name:"statfs" ~number:137 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"filesystem statistics for a path" (fun _ ->
        path_walk 2 @ [ Read_lock (Sb_umount, h 250.0 0.3); Cpu 300.0 ]);
    spec ~name:"fstatfs" ~number:138 ~categories:[ Category.Fs_mgmt ]
      ~doc:"filesystem statistics via descriptor" (fun _ ->
        [ fd_lookup; Read_lock (Sb_umount, h 250.0 0.3); Cpu 280.0 ]);
    spec ~name:"utimensat" ~number:280 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"set file timestamps" (fun _ ->
        (fd_lookup :: path_walk 1)
        @ [ journalled_inode_op ~inode:400.0 ~journal:500.0 ]);
    spec ~name:"mount" ~number:165 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~doc:"mount a filesystem" (fun _ ->
        path_walk 2
        @ [
            cred_check;
            Write_lock (Sb_umount, h 5_000.0 0.5);
            Slab_alloc;
            journal_op 1_500.0;
            audit_record;
          ]);
    spec ~name:"umount2" ~number:166 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~doc:"unmount a filesystem" (fun _ ->
        path_walk 1
        @ [
            cred_check;
            Write_lock (Sb_umount, h 8_000.0 0.5);
            Rcu_sync;
            audit_record;
          ]);
    spec ~name:"sync" ~number:162 ~categories:[ Category.Fs_mgmt; Category.File_io ]
      ~doc:"flush all dirty data" (fun _ ->
        [ journal_op 1_200.0; Block_io { bytes = 131072; write = true } ]);
    spec ~name:"syncfs" ~number:306 ~categories:[ Category.Fs_mgmt; Category.File_io ]
      ~doc:"flush one filesystem" (fun _ ->
        [ fd_lookup; journal_op 1_000.0; Block_io { bytes = 65536; write = true } ]);
    spec ~name:"mknod" ~number:133 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"create a special file" (fun _ ->
        path_walk 2 @ [ Slab_alloc; inode_op 500.0; journal_op 800.0 ]);
    spec ~name:"flock" ~number:73 ~categories:[ Category.Fs_mgmt; Category.Ipc ]
      ~arg_model:(Arg.objected 16) ~doc:"advisory whole-file lock" (fun _ ->
        [ fd_lookup; inode_op 700.0; Slab_alloc ]);
  ]

(* ====================================================================
   (e) Inter-process communication
   ==================================================================== *)

let ipc_specs =
  [
    spec ~name:"pipe2" ~number:293 ~categories:[ Category.Ipc ]
      ~doc:"create a pipe pair" (fun _ ->
        [ Slab_alloc; Slab_alloc; Page_alloc 0; Cpu 350.0 ]);
    spec ~name:"pipe_write" ~number:1001 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"write into a pipe (modeled as distinct from file write)"
      (fun arg ->
        [ fd_lookup; Lock (Pipe, h 300.0 0.4); copy_cost arg.Arg.size; rq_op 250.0 ]);
    spec ~name:"pipe_read" ~number:1000 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"read from a pipe" (fun arg ->
        [ fd_lookup; Lock (Pipe, h 280.0 0.4); copy_cost arg.Arg.size ]);
    spec ~name:"socketpair" ~number:53 ~categories:[ Category.Ipc ]
      ~doc:"create a connected socket pair" (fun _ ->
        [ Slab_alloc; Slab_alloc; Cpu 900.0 ]);
    spec ~name:"msgget" ~number:68 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 8) ~doc:"get a System-V message queue" (fun _ ->
        [ Lock (Msgq_registry, h 350.0 0.4); Slab_alloc ]);
    spec ~name:"msgsnd" ~number:69 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096 |])
      ~doc:"send a System-V message" (fun arg ->
        [
          Lock (Msgq_registry, h 200.0 0.3);
          copy_cost arg.Arg.size;
          Slab_alloc;
          rq_op 250.0;
        ]);
    spec ~name:"msgrcv" ~number:70 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096 |])
      ~doc:"receive a System-V message" (fun arg ->
        [
          Lock (Msgq_registry, h 220.0 0.3);
          Sleep (h 3_000.0 0.7);
          copy_cost arg.Arg.size;
        ]);
    spec ~name:"msgctl" ~number:71 ~categories:[ Category.Ipc ]
      ~doc:"message-queue control" (fun _ ->
        [ Lock (Msgq_registry, h 400.0 0.4); Cpu 250.0 ]);
    spec ~name:"semget" ~number:64 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 8) ~doc:"get a semaphore set" (fun _ ->
        [ Lock (Msgq_registry, h 330.0 0.4); Slab_alloc ]);
    spec ~name:"semop" ~number:65 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 8) ~doc:"semaphore operations" (fun _ ->
        [ Lock (Msgq_registry, h 260.0 0.3); Cpu 200.0; rq_op 230.0 ]);
    spec ~name:"semctl" ~number:66 ~categories:[ Category.Ipc ]
      ~doc:"semaphore control" (fun _ ->
        [ Lock (Msgq_registry, h 380.0 0.4); Cpu 220.0 ]);
    spec ~name:"shmget" ~number:29 ~categories:[ Category.Ipc; Category.Memory ]
      ~arg_model:(Arg.sized [| 65536; 1 lsl 20 |])
      ~doc:"get a shared-memory segment" (fun arg ->
        [
          Lock (Msgq_registry, h 350.0 0.4);
          Page_alloc (if arg.Arg.size > 65536 then 6 else 4);
          Cgroup_charge;
        ]);
    spec ~name:"shmat" ~number:30 ~categories:[ Category.Ipc; Category.Memory ]
      ~doc:"attach a shared-memory segment" (fun _ ->
        [ Lock (Msgq_registry, h 280.0 0.3); Write_lock (Mmap_sem, h 500.0 0.4); Slab_alloc ]);
    spec ~name:"shmdt" ~number:67 ~categories:[ Category.Ipc; Category.Memory ]
      ~doc:"detach a shared-memory segment" (fun _ ->
        [ Write_lock (Mmap_sem, h 500.0 0.4); Tlb_shootdown ]);
    spec ~name:"shmctl" ~number:31 ~categories:[ Category.Ipc ]
      ~doc:"shared-memory control" (fun _ ->
        [ Lock (Msgq_registry, h 380.0 0.4); Cpu 230.0 ]);
    spec ~name:"futex_wait" ~number:202 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 16) ~doc:"wait on a futex word" (fun _ ->
        [ Lock (Futex_bucket, h 200.0 0.3); Sleep (h 2_500.0 0.8); rq_op 240.0 ]);
    spec ~name:"futex_wake" ~number:1202 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 16) ~doc:"wake futex waiters" (fun _ ->
        [ Lock (Futex_bucket, h 220.0 0.3); rq_op 260.0 ]);
    spec ~name:"mq_open" ~number:240 ~categories:[ Category.Ipc; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 8) ~doc:"open a POSIX message queue" (fun _ ->
        path_walk 1 @ [ Slab_alloc; inode_op 400.0 ]);
    spec ~name:"mq_timedsend" ~number:242 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096 |])
      ~doc:"send to a POSIX queue" (fun arg ->
        [ fd_lookup; copy_cost arg.Arg.size; Slab_alloc; rq_op 240.0 ]);
    spec ~name:"mq_timedreceive" ~number:243 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096 |])
      ~doc:"receive from a POSIX queue" (fun arg ->
        [ fd_lookup; Sleep (h 2_500.0 0.7); copy_cost arg.Arg.size ]);
    spec ~name:"mq_unlink" ~number:241 ~categories:[ Category.Ipc; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 8) ~doc:"remove a POSIX queue" (fun _ ->
        path_walk 1 @ [ inode_op 450.0; Rcu_sync ]);
    spec ~name:"signalfd4" ~number:289 ~categories:[ Category.Ipc; Category.File_io ]
      ~doc:"signal delivery via descriptor" (fun _ -> [ Slab_alloc; Cpu 320.0 ]);
    spec ~name:"socket" ~number:41 ~categories:[ Category.Ipc ]
      ~doc:"create a socket" (fun _ -> [ Slab_alloc; Slab_alloc; Cpu 700.0; Cgroup_charge ]);
    spec ~name:"bind" ~number:49 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 8) ~doc:"bind a socket address" (fun _ ->
        [ fd_lookup; Cpu 400.0 ]);
    spec ~name:"listen" ~number:50 ~categories:[ Category.Ipc ]
      ~doc:"mark a socket passive" (fun _ -> [ fd_lookup; Cpu 250.0 ]);
    spec ~name:"accept4" ~number:288 ~categories:[ Category.Ipc ]
      ~doc:"accept a connection" (fun _ ->
        [ fd_lookup; Sleep (h 5_000.0 0.7); Slab_alloc; rq_op 240.0 ]);
    spec ~name:"connect" ~number:42 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.objected 8) ~doc:"connect a socket (loopback)" (fun _ ->
        [ fd_lookup; Cpu 1_200.0; Slab_alloc; rq_op 260.0 ]);
    spec ~name:"sendto" ~number:44 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"send on a socket" (fun arg ->
        [ fd_lookup; copy_cost arg.Arg.size; Slab_alloc; Cpu 500.0; rq_op 250.0 ]);
    spec ~name:"recvfrom" ~number:45 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"receive on a socket" (fun arg ->
        [ fd_lookup; Sleep (h 3_000.0 0.7); copy_cost arg.Arg.size; Cpu 450.0 ]);
    spec ~name:"sendmsg" ~number:46 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"send with ancillary data" (fun arg ->
        [ fd_lookup; Cpu 250.0; copy_cost arg.Arg.size; Slab_alloc; rq_op 250.0 ]);
    spec ~name:"recvmsg" ~number:47 ~categories:[ Category.Ipc ]
      ~arg_model:(Arg.sized [| 64; 512; 4096; 65536 |])
      ~doc:"receive with ancillary data" (fun arg ->
        [ fd_lookup; Sleep (h 3_200.0 0.7); copy_cost arg.Arg.size; Cpu 480.0 ]);
    spec ~name:"shutdown" ~number:48 ~categories:[ Category.Ipc ]
      ~doc:"shut down a connection" (fun _ -> [ fd_lookup; Cpu 350.0 ]);
    spec ~name:"setsockopt" ~number:54 ~categories:[ Category.Ipc ]
      ~doc:"set a socket option" (fun _ -> [ fd_lookup; Cpu 300.0 ]);
    spec ~name:"getsockopt" ~number:55 ~categories:[ Category.Ipc ]
      ~doc:"read a socket option" (fun _ -> [ fd_lookup; Cpu 260.0 ]);
  ]

(* ====================================================================
   (f) Permission / capability management
   ==================================================================== *)

let perm_specs =
  [
    spec ~name:"chmod" ~number:90 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16)
      ~doc:"change file mode (the paper's dual-category example)" (fun _ ->
        path_walk 2 @ [ cred_check; inode_op 450.0; journal_op 550.0; audit_record ]);
    spec ~name:"fchmod" ~number:91 ~categories:[ Category.Perm ]
      ~doc:"change mode via descriptor" (fun _ ->
        [ fd_lookup; cred_check; inode_op 420.0; journal_op 500.0; audit_record ]);
    spec ~name:"fchmodat" ~number:268 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"change mode relative to a dirfd" (fun _ ->
        (fd_lookup :: path_walk 1)
        @ [ cred_check; inode_op 430.0; journal_op 520.0; audit_record ]);
    spec ~name:"chown" ~number:92 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"change file ownership" (fun _ ->
        path_walk 2 @ [ cred_check; inode_op 480.0; journal_op 580.0; audit_record ]);
    spec ~name:"fchown" ~number:93 ~categories:[ Category.Perm ]
      ~doc:"change ownership via descriptor" (fun _ ->
        [ fd_lookup; cred_check; inode_op 450.0; journal_op 540.0; audit_record ]);
    spec ~name:"lchown" ~number:94 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"change ownership of a symlink" (fun _ ->
        path_walk 2 @ [ cred_check; inode_op 460.0; journal_op 560.0; audit_record ]);
    spec ~name:"fchownat" ~number:260 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 16) ~doc:"change ownership relative to a dirfd"
      (fun _ ->
        (fd_lookup :: path_walk 1)
        @ [ cred_check; inode_op 460.0; journal_op 550.0; audit_record ]);
    spec ~name:"setuid" ~number:105 ~categories:[ Category.Perm ]
      ~doc:"set the user id (new credentials, RCU-published)" (fun _ ->
        [ Lock (Cred, h 400.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"setgid" ~number:106 ~categories:[ Category.Perm ]
      ~doc:"set the group id" (fun _ ->
        [ Lock (Cred, h 380.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"setreuid" ~number:113 ~categories:[ Category.Perm ]
      ~doc:"set real and effective uid" (fun _ ->
        [ Lock (Cred, h 420.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"setregid" ~number:114 ~categories:[ Category.Perm ]
      ~doc:"set real and effective gid" (fun _ ->
        [ Lock (Cred, h 410.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"setresuid" ~number:117 ~categories:[ Category.Perm ]
      ~doc:"set real, effective and saved uid" (fun _ ->
        [ Lock (Cred, h 430.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"setresgid" ~number:119 ~categories:[ Category.Perm ]
      ~doc:"set real, effective and saved gid" (fun _ ->
        [ Lock (Cred, h 425.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"getuid" ~number:102 ~categories:[ Category.Perm ]
      ~doc:"read the real uid" (fun _ -> [ Cpu 55.0 ]);
    spec ~name:"geteuid" ~number:107 ~categories:[ Category.Perm ]
      ~doc:"read the effective uid" (fun _ -> [ Cpu 55.0 ]);
    spec ~name:"getgid" ~number:104 ~categories:[ Category.Perm ]
      ~doc:"read the real gid" (fun _ -> [ Cpu 55.0 ]);
    spec ~name:"getegid" ~number:108 ~categories:[ Category.Perm ]
      ~doc:"read the effective gid" (fun _ -> [ Cpu 55.0 ]);
    spec ~name:"setgroups" ~number:116 ~categories:[ Category.Perm ]
      ~doc:"set supplementary groups" (fun _ ->
        [ cred_check; Lock (Cred, h 450.0 0.4); Slab_alloc; Rcu_sync; audit_record ]);
    spec ~name:"getgroups" ~number:115 ~categories:[ Category.Perm ]
      ~doc:"read supplementary groups" (fun _ -> [ Cpu 160.0 ]);
    spec ~name:"capget" ~number:125 ~categories:[ Category.Perm ]
      ~doc:"read capability sets" (fun _ -> [ tasklist_op 220.0; Cpu 180.0 ]);
    spec ~name:"capset" ~number:126 ~categories:[ Category.Perm ]
      ~doc:"set capability sets" (fun _ ->
        [ cred_check; Lock (Cred, h 480.0 0.4); Rcu_sync; audit_record ]);
    spec ~name:"umask" ~number:95 ~categories:[ Category.Perm ]
      ~doc:"set the file-creation mask" (fun _ -> [ Cpu 75.0 ]);
    spec ~name:"setfsuid" ~number:122 ~categories:[ Category.Perm ]
      ~doc:"set the filesystem uid" (fun _ ->
        [ Lock (Cred, h 350.0 0.4); Slab_alloc; audit_record ]);
    spec ~name:"setfsgid" ~number:123 ~categories:[ Category.Perm ]
      ~doc:"set the filesystem gid" (fun _ ->
        [ Lock (Cred, h 345.0 0.4); Slab_alloc; audit_record ]);
    spec ~name:"setxattr" ~number:188 ~categories:[ Category.Perm; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"set an extended attribute" (fun _ ->
        path_walk 2 @ [ cred_check; inode_op 550.0; journal_op 650.0 ]);
    spec ~name:"getxattr" ~number:191 ~categories:[ Category.Perm; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"read an extended attribute" (fun _ ->
        path_walk 2 @ [ inode_op 300.0; Cpu 200.0 ]);
    spec ~name:"listxattr" ~number:194 ~categories:[ Category.Perm; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"list extended attributes" (fun _ ->
        path_walk 2 @ [ inode_op 280.0; Cpu 250.0 ]);
    spec ~name:"removexattr" ~number:197 ~categories:[ Category.Perm; Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 16) ~doc:"remove an extended attribute" (fun _ ->
        path_walk 2 @ [ cred_check; inode_op 520.0; journal_op 620.0 ]);
  ]

(* ====================================================================
   Timers, clocks, resource limits and miscellaneous management calls.
   Mostly cheap reads plus a few timer-wheel and rlimit writers; they
   broaden the corpus with low-latency calls the paper's Table 2 counts
   in its sub-microsecond buckets.
   ==================================================================== *)

let misc_specs =
  [
    spec ~name:"clock_gettime" ~number:228 ~categories:[ Category.Process ]
      ~doc:"read a posix clock (vDSO fast path)" (fun _ -> [ Cpu 30.0 ]);
    spec ~name:"gettimeofday" ~number:96 ~categories:[ Category.Process ]
      ~doc:"wall-clock time (vDSO fast path)" (fun _ -> [ Cpu 28.0 ]);
    spec ~name:"time" ~number:201 ~categories:[ Category.Process ]
      ~doc:"seconds since the epoch" (fun _ -> [ Cpu 25.0 ]);
    spec ~name:"clock_getres" ~number:229 ~categories:[ Category.Process ]
      ~doc:"clock resolution" (fun _ -> [ Cpu 60.0 ]);
    spec ~name:"clock_nanosleep" ~number:230 ~categories:[ Category.Process ]
      ~arg_model:(Arg.sized [| 1000; 10_000; 100_000 |])
      ~doc:"sleep against a specific clock" (fun arg ->
        [
          Cpu 350.0;
          Sleep (Dist.shifted (float_of_int arg.Arg.size) (h 2_000.0 0.6));
          rq_op 260.0;
        ]);
    spec ~name:"timerfd_create" ~number:283 ~categories:[ Category.Process; Category.File_io ]
      ~doc:"timer delivered via a descriptor" (fun _ -> [ Slab_alloc; Cpu 320.0 ]);
    spec ~name:"timerfd_settime" ~number:286 ~categories:[ Category.Process ]
      ~doc:"arm a timerfd (timer wheel insertion)" (fun _ ->
        [ fd_lookup; Cpu 280.0; rq_op 200.0 ]);
    spec ~name:"timerfd_gettime" ~number:287 ~categories:[ Category.Process ]
      ~doc:"read a timerfd's remaining time" (fun _ -> [ fd_lookup; Cpu 150.0 ]);
    spec ~name:"setitimer" ~number:38 ~categories:[ Category.Process ]
      ~doc:"arm an interval timer" (fun _ -> [ tasklist_op 250.0; Cpu 200.0 ]);
    spec ~name:"getitimer" ~number:36 ~categories:[ Category.Process ]
      ~doc:"read an interval timer" (fun _ -> [ Cpu 140.0 ]);
    spec ~name:"alarm" ~number:37 ~categories:[ Category.Process ]
      ~doc:"arm the SIGALRM timer" (fun _ -> [ tasklist_op 220.0 ]);
    spec ~name:"pause" ~number:34 ~categories:[ Category.Process; Category.Ipc ]
      ~doc:"wait for any signal" (fun _ ->
        [ Cpu 150.0; Sleep (h 8_000.0 0.8); rq_op 240.0 ]);
    spec ~name:"rt_sigsuspend" ~number:130 ~categories:[ Category.Process; Category.Ipc ]
      ~doc:"atomically unblock and wait for a signal" (fun _ ->
        [ Cpu 200.0; Sleep (h 8_000.0 0.8); rq_op 240.0 ]);
    spec ~name:"getrandom" ~number:318 ~categories:[ Category.Perm ]
      ~arg_model:(Arg.sized [| 16; 256; 4096 |])
      ~doc:"kernel CSPRNG bytes" (fun arg ->
        [ Cpu (150.0 +. (float_of_int arg.Arg.size *. 2.2)) ]);
    spec ~name:"sysinfo" ~number:99 ~categories:[ Category.Process; Category.Memory ]
      ~doc:"system memory and load statistics" (fun _ ->
        [ Lock (Zone, h 180.0 0.3); Cpu 250.0 ]);
    spec ~name:"sched_getcpu" ~number:309 ~categories:[ Category.Process ]
      ~doc:"which CPU the caller runs on (vDSO)" (fun _ -> [ Cpu 22.0 ]);
    spec ~name:"getrlimit" ~number:97 ~categories:[ Category.Process; Category.Perm ]
      ~doc:"read a resource limit" (fun _ -> [ tasklist_op 160.0 ]);
    spec ~name:"setrlimit" ~number:160 ~categories:[ Category.Process; Category.Perm ]
      ~doc:"set a resource limit" (fun _ ->
        [ cred_check; tasklist_op 300.0; audit_record ]);
    spec ~name:"prlimit64" ~number:302 ~categories:[ Category.Process; Category.Perm ]
      ~doc:"read/modify another task's limits" (fun _ ->
        [ cred_check; tasklist_op 320.0 ]);
    spec ~name:"ioprio_set" ~number:251 ~categories:[ Category.Process; Category.File_io ]
      ~doc:"set I/O scheduling priority" (fun _ ->
        [ cred_check; tasklist_op 280.0 ]);
    spec ~name:"ioprio_get" ~number:252 ~categories:[ Category.Process; Category.File_io ]
      ~doc:"read I/O scheduling priority" (fun _ -> [ tasklist_op 170.0 ]);
    spec ~name:"chroot" ~number:161 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~arg_model:(Arg.objected 8) ~doc:"change the root directory" (fun _ ->
        path_walk 2 @ [ cred_check; Cpu 250.0; audit_record ]);
    spec ~name:"pivot_root" ~number:155 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~doc:"swap the root mount" (fun _ ->
        path_walk 2
        @ [ cred_check; Write_lock (Sb_umount, h 4_000.0 0.5); audit_record ]);
    spec ~name:"sethostname" ~number:170 ~categories:[ Category.Perm ]
      ~doc:"set the host name" (fun _ -> [ cred_check; Cpu 180.0; audit_record ]);
    spec ~name:"fadvise64" ~number:221 ~categories:[ Category.File_io ]
      ~arg_model:Arg.io ~doc:"advise the kernel about file access" (fun arg ->
        fd_lookup :: (if arg.Arg.flags = 1 then page_cache_io (min arg.Arg.size 65536) else [ Cpu 180.0 ]));
    spec ~name:"name_to_handle_at" ~number:303 ~categories:[ Category.Fs_mgmt ]
      ~arg_model:(Arg.objected 8) ~doc:"path to opaque file handle" (fun _ ->
        (fd_lookup :: path_walk 2) @ [ Cpu 260.0 ]);
    spec ~name:"open_by_handle_at" ~number:304 ~categories:[ Category.Fs_mgmt; Category.Perm ]
      ~doc:"open a file by handle (CAP_DAC_READ_SEARCH)" (fun _ ->
        [ fd_lookup; cred_check; inode_op 350.0; Slab_alloc ]);
    spec ~name:"process_vm_readv" ~number:310 ~categories:[ Category.Memory; Category.Ipc ]
      ~arg_model:(Arg.sized [| 4096; 65536 |])
      ~doc:"read another process's memory" (fun arg ->
        [
          cred_check;
          tasklist_op 300.0;
          Read_lock (Mmap_sem, h 400.0 0.3);
          copy_cost arg.Arg.size;
        ]);
    spec ~name:"process_vm_writev" ~number:311 ~categories:[ Category.Memory; Category.Ipc ]
      ~arg_model:(Arg.sized [| 4096; 65536 |])
      ~doc:"write another process's memory" (fun arg ->
        [
          cred_check;
          tasklist_op 320.0;
          Read_lock (Mmap_sem, h 450.0 0.3);
          copy_cost arg.Arg.size;
        ]);
    spec ~name:"kcmp" ~number:312 ~categories:[ Category.Process ]
      ~doc:"compare two processes' kernel resources" (fun _ ->
        [ cred_check; tasklist_op 280.0 ]);
    spec ~name:"seccomp" ~number:317 ~categories:[ Category.Perm; Category.Process ]
      ~doc:"install a syscall filter" (fun _ ->
        [ cred_check; Slab_alloc; tasklist_op 350.0; Rcu_sync ]);
    spec ~name:"membarrier" ~number:324 ~categories:[ Category.Memory; Category.Process ]
      ~doc:"memory barrier across the process's CPUs" (fun _ ->
        [ Cpu 200.0; Rcu_sync ]);
    spec ~name:"userfaultfd" ~number:323 ~categories:[ Category.Memory; Category.File_io ]
      ~doc:"user-space page-fault handling descriptor" (fun _ ->
        [ Slab_alloc; Write_lock (Mmap_sem, h 400.0 0.4); Cpu 500.0 ]);
  ]

(* Eager validation at table-build time: a duplicate name would make
   [Syscalls.by_name] ambiguous, a duplicate number used to be silently
   last-wins in [Syscalls.by_number], and an empty category list would
   make the call invisible to the specializer's machinery pruning.  All
   three are table-authoring mistakes; fail loudly here, with the
   offending entry named, rather than misbehave downstream. *)
let validate specs =
  let names = Hashtbl.create 256 in
  let numbers = Hashtbl.create 256 in
  List.iter
    (fun (s : Spec.t) ->
      if s.Spec.categories = [] then
        invalid_arg
          (Printf.sprintf "Table.validate: syscall %S has no categories"
             s.Spec.name);
      (match Hashtbl.find_opt names s.Spec.name with
      | Some () ->
          invalid_arg
            (Printf.sprintf "Table.validate: duplicate syscall name %S"
               s.Spec.name)
      | None -> Hashtbl.add names s.Spec.name ());
      match Hashtbl.find_opt numbers s.Spec.number with
      | Some other ->
          invalid_arg
            (Printf.sprintf
               "Table.validate: syscall number %d used by both %S and %S"
               s.Spec.number other s.Spec.name)
      | None -> Hashtbl.add numbers s.Spec.number s.Spec.name)
    specs;
  specs

let specs =
  validate
    (process_specs @ memory_specs @ file_io_specs @ fs_mgmt_specs @ ipc_specs
   @ perm_specs @ misc_specs)
