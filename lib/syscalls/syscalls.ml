let all =
  let arr = Array.of_list Table.specs in
  Array.sort (fun a b -> String.compare a.Spec.name b.Spec.name) arr;
  arr

let count = Array.length all

let name_index =
  let tbl = Hashtbl.create (2 * count) in
  Array.iter
    (fun s ->
      if Hashtbl.mem tbl s.Spec.name then
        invalid_arg ("Syscalls: duplicate syscall name " ^ s.Spec.name);
      Hashtbl.add tbl s.Spec.name s)
    all;
  tbl

let number_index =
  let tbl = Hashtbl.create (2 * count) in
  Array.iter
    (fun s ->
      (* Table.validate already rejects duplicates; mirror the name
         index's loudness rather than silently keeping the last entry. *)
      if Hashtbl.mem tbl s.Spec.number then
        invalid_arg
          (Printf.sprintf "Syscalls: duplicate syscall number %d" s.Spec.number);
      Hashtbl.add tbl s.Spec.number s)
    all;
  tbl

let by_name name = Hashtbl.find_opt name_index name
let by_number n = Hashtbl.find_opt number_index n

let in_category cat =
  Array.to_list all |> List.filter (fun s -> Spec.in_category s cat)

let names () = Array.to_list (Array.map (fun s -> s.Spec.name) all)
