(** The modeled system-call table (data module).

    Use {!Syscalls} for lookup; this module only exposes the raw list. *)

val specs : Spec.t list
(** Every modeled call.  Names are unique; see {!Syscalls.by_name}. *)

val validate : Spec.t list -> Spec.t list
(** Eager well-formedness check, applied to {!specs} at module-build
    time and reusable for custom tables (e.g. the static analyzer's
    negative controls): raises a descriptive [Invalid_argument] on a
    duplicate syscall name, a duplicate syscall number, or an empty
    [categories] list.  Returns the list unchanged when valid. *)
