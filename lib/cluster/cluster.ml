module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Machine = Ksurf_env.Machine
module Partition = Ksurf_env.Partition
module Mailbox = Ksurf_sim.Mailbox
module Prng = Ksurf_util.Prng
module Quantile = Ksurf_stats.Quantile
module Noise = Ksurf_varbench.Noise
module Apps = Ksurf_tailbench.Apps
module Service = Ksurf_tailbench.Service

type config = {
  nodes_total : int;
  nodes_simulated : int;
  iterations : int;
  sim_iterations_per_node : int;
  warmup_iterations : int;
  requests_per_iteration : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Machine.t;
  seed : int;
}

let default_config =
  {
    nodes_total = 64;
    nodes_simulated = 3;
    iterations = 50;
    sim_iterations_per_node = 50;
    warmup_iterations = 2;
    requests_per_iteration = 25;
    util_target = 0.65;
    units = 4;
    unit_cores = 12;
    unit_mem_mb = 16384;
    machine = Machine.haswell_node;
    seed = 42;
  }

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  runtime_ns : float;
  node_mean_iter_ns : float;
  node_p99_iter_ns : float;
  straggler_factor : float;
  iteration_samples : int;
}

(* Fully simulate one node: the app in unit 0, noise in units 1-3 when
   contended, iteration = a fixed burst of requests followed by a local
   quiescent point.  Returns per-iteration durations (warm-up dropped). *)
let simulate_node ~app ~kind ~contended ~config ~noise_corpus ~node_seed
    ~on_engine =
  let compiled = Service.compile app in
  let engine = Engine.create ~seed:node_seed () in
  (* Observer hook: lets sanitizers attach probes before anything runs. *)
  on_engine engine;
  let partition =
    Partition.equal_split ~units:config.units
      ~total_cores:(config.units * config.unit_cores)
      ~total_mem_mb:(config.units * config.unit_mem_mb)
  in
  let env = Env.deploy ~engine ~machine:config.machine kind partition in
  let workers = List.init config.unit_cores (fun i -> i) in
  if contended then begin
    let noise_ranks =
      List.init
        (Env.rank_count env - config.unit_cores)
        (fun i -> config.unit_cores + i)
    in
    ignore (Noise.start ~env ~corpus:noise_corpus ~ranks:noise_ranks () : Noise.handle)
  end;
  let mean_service = Service.estimate_native_service compiled in
  let rate =
    config.util_target *. float_of_int config.unit_cores /. mean_service
  in
  let mailbox = Mailbox.create ~engine ~name:(app.Apps.name ^ ".reqs") in
  let completed_in_iter = ref 0 in
  let iteration_waiter : (unit -> unit) option ref = ref None in
  List.iter
    (fun rank ->
      let rng =
        Prng.split (Engine.rng engine) (Printf.sprintf "worker-%d" rank)
      in
      Engine.spawn engine (fun () ->
          let rec serve () =
            let _arrival : float = Mailbox.recv mailbox in
            let hw_dilation =
              if not contended then 1.0
              else
                match kind with
                | Env.Kvm _ -> 1.005 +. Prng.float rng 0.01
                | Env.Native | Env.Multikernel | Env.Docker -> 1.01 +. Prng.float rng 0.03
            in
            Service.handle compiled ~env ~rank ~rng ~hw_dilation ();
            incr completed_in_iter;
            (if !completed_in_iter >= config.requests_per_iteration then
               match !iteration_waiter with
               | Some wake ->
                   iteration_waiter := None;
                   wake ()
               | None -> ());
            serve ()
          in
          serve ()))
    workers;
  let durations = ref [] in
  let total_iters = config.warmup_iterations + config.sim_iterations_per_node in
  let finished = ref false in
  let client_rng = Prng.split (Engine.rng engine) "client" in
  Engine.spawn engine (fun () ->
      for iter = 0 to total_iters - 1 do
        let start = Engine.now engine in
        completed_in_iter := 0;
        for _ = 1 to config.requests_per_iteration do
          let gap = -.Float.log (1.0 -. Prng.uniform client_rng) /. rate in
          Engine.delay gap;
          Mailbox.send mailbox (Engine.now engine)
        done;
        (* Wait until the whole burst has been served. *)
        if !completed_in_iter < config.requests_per_iteration then
          Engine.suspend (fun wake -> iteration_waiter := Some wake);
        if iter >= config.warmup_iterations then
          durations := (Engine.now engine -. start) :: !durations
      done;
      finished := true);
  Engine.run ~stop:(fun () -> !finished) engine;
  Array.of_list (List.rev !durations)

let run ~app ~kind ~contended ?(config = default_config) ?noise_corpus
    ?(on_engine = fun (_ : Engine.t) -> ()) () =
  if config.nodes_simulated < 1 then invalid_arg "Cluster.run: need >= 1 node";
  let noise_corpus =
    match noise_corpus with
    | Some c -> c
    | None ->
        if contended then
          (Ksurf_syzgen.Generator.run ()).Ksurf_syzgen.Generator.corpus
        else
          (* Unused, but keep the type simple: a minimal corpus. *)
          (Ksurf_syzgen.Generator.run
             ~params:
               {
                 Ksurf_syzgen.Generator.default_params with
                 Ksurf_syzgen.Generator.target_programs = 1;
               }
             ())
            .Ksurf_syzgen.Generator.corpus
  in
  let pool =
    Array.concat
      (List.init config.nodes_simulated (fun node ->
           simulate_node ~app ~kind ~contended ~config ~noise_corpus
             ~node_seed:(config.seed + (node * 7919))
             ~on_engine))
  in
  if Array.length pool = 0 then failwith "Cluster.run: no iteration samples";
  (* Synthesise the BSP runtime: nodes are independent given the
     barrier, so each global iteration lasts as long as the slowest of
     [nodes_total] draws from the empirical iteration distribution.  We
     use the exact expectation of that maximum under the empirical CDF,
     E[max] = sum_k x_(k) * [ (k/n)^N - ((k-1)/n)^N ], rather than a
     Monte-Carlo resample: the estimate is then deterministic in the
     pool, so iso-vs-contended comparisons are free of resampling
     noise. *)
  let barrier_cost =
    let per_party =
      match kind with
      | Env.Kvm virt -> 1_500.0 +. virt.Ksurf_virt.Virt_config.virtio_net_per_msg
      | Env.Native | Env.Multikernel | Env.Docker -> 1_800.0
    in
    per_party *. Float.ceil (Float.log (float_of_int config.nodes_total) /. Float.log 2.0)
  in
  let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr) in
  let sorted = Quantile.sorted_copy pool in
  let n = float_of_int (Array.length sorted) in
  let power frac = Float.pow frac (float_of_int config.nodes_total) in
  let expected_max = ref 0.0 in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      expected_max := !expected_max +. (x *. (power (k /. n) -. power ((k -. 1.0) /. n))))
    sorted;
  let runtime_ns =
    float_of_int config.iterations *. (!expected_max +. barrier_cost)
  in
  {
    app_name = app.Apps.name;
    kind = Env.kind_name kind;
    contended;
    runtime_ns;
    node_mean_iter_ns = mean pool;
    node_p99_iter_ns = Quantile.p99 pool;
    straggler_factor = !expected_max /. mean pool;
    iteration_samples = Array.length pool;
  }

let relative_loss ~isolated ~contended =
  100.0 *. (contended.runtime_ns -. isolated.runtime_ns) /. isolated.runtime_ns
