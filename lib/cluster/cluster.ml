module Engine = Ksurf_sim.Engine
module Env = Ksurf_env.Env
module Machine = Ksurf_env.Machine
module Partition = Ksurf_env.Partition
module Mailbox = Ksurf_sim.Mailbox
module Prng = Ksurf_util.Prng
module Quantile = Ksurf_stats.Quantile
module Noise = Ksurf_varbench.Noise
module Apps = Ksurf_tailbench.Apps
module Service = Ksurf_tailbench.Service
module Supervisor = Ksurf_recov.Supervisor

type config = {
  nodes_total : int;
  nodes_simulated : int;
  iterations : int;
  sim_iterations_per_node : int;
  warmup_iterations : int;
  requests_per_iteration : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Machine.t;
  seed : int;
}

let default_config =
  {
    nodes_total = 64;
    nodes_simulated = 3;
    iterations = 50;
    sim_iterations_per_node = 50;
    warmup_iterations = 2;
    requests_per_iteration = 25;
    util_target = 0.65;
    units = 4;
    unit_cores = 12;
    unit_mem_mb = 16384;
    machine = Machine.haswell_node;
    seed = 42;
  }

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  runtime_ns : float;
  node_mean_iter_ns : float;
  node_p99_iter_ns : float;
  straggler_factor : float;
  iteration_samples : int;
  policy : string;
  degraded : bool;
  survivors : int;
  crashes : int;
  restarts : int;
  backups : int;
  samples_dropped : int;
}

type node_outcome = {
  durations : float array;
  node_crashes : int;
  node_restarts : int;
  node_dropped : int;  (* iteration samples discarded after permanent loss *)
}

(* Fully simulate one node: the app in unit 0, noise in units 1-3 when
   contended, iteration = a fixed burst of requests followed by a local
   quiescent point.  Returns per-iteration durations (warm-up dropped). *)
let simulate_node ~app ~kind ~contended ~config ~noise_corpus ~node_seed
    ~on_engine ~on_env =
  let compiled = Service.compile app in
  let engine = Engine.create ~seed:node_seed () in
  (* Observer hook: lets sanitizers attach probes before anything runs. *)
  on_engine engine;
  let partition =
    Partition.equal_split ~units:config.units
      ~total_cores:(config.units * config.unit_cores)
      ~total_mem_mb:(config.units * config.unit_mem_mb)
  in
  let env = Env.deploy ~engine ~machine:config.machine kind partition in
  (* Deployment hook: lets callers arm a fault plan on the fresh env. *)
  on_env env;
  let workers = List.init config.unit_cores (fun i -> i) in
  if contended then begin
    let noise_ranks =
      List.init
        (Env.rank_count env - config.unit_cores)
        (fun i -> config.unit_cores + i)
    in
    ignore (Noise.start ~env ~corpus:noise_corpus ~ranks:noise_ranks () : Noise.handle)
  end;
  let mean_service = Service.estimate_native_service compiled in
  let rate =
    config.util_target *. float_of_int config.unit_cores /. mean_service
  in
  let mailbox = Mailbox.create ~engine ~name:(app.Apps.name ^ ".reqs") in
  let completed_in_iter = ref 0 in
  let iteration_waiter : (unit -> unit) option ref = ref None in
  (* Robustness accounting (krecov): a fault plan armed via [on_env]
     may crash a worker rank.  A crashed worker requeues its in-flight
     request and either restarts after the plan's downtime or exits for
     good; a permanent loss marks the node so iteration samples gathered
     after the crash — timed with fewer serving cores — are dropped
     rather than silently distorting the BSP pool. *)
  let live = ref (List.length workers) in
  let crashes = ref 0 in
  let restarts = ref 0 in
  let lost_for_good = ref false in
  List.iter
    (fun rank ->
      let rng =
        Prng.split (Engine.rng engine) (Printf.sprintf "worker-%d" rank)
      in
      Engine.spawn engine (fun () ->
          let crash_at = Env.crash_time_of_rank env ~rank in
          let restart_delay = Env.restart_delay_of_rank env ~rank in
          let crash_handled = ref false in
          let rec serve () =
            let arrival = Mailbox.recv mailbox in
            match crash_at with
            | Some at when (not !crash_handled) && Engine.now engine >= at -> (
                crash_handled := true;
                incr crashes;
                if Engine.observed engine then
                  Engine.emit engine
                    (Engine.Injected
                       {
                         now = Engine.now engine;
                         pid = Engine.current_pid engine;
                         fault = "rank-crash";
                         magnitude = float_of_int rank;
                       });
                (* The in-flight request survives the crash: back to the
                   queue for whoever is still serving. *)
                Mailbox.send mailbox arrival;
                match restart_delay with
                | Some downtime ->
                    Engine.delay downtime;
                    incr restarts;
                    serve ()
                | None ->
                    decr live;
                    lost_for_good := true)
            | _ ->
                let hw_dilation =
                  if not contended then 1.0
                  else
                    match kind with
                    | Env.Kvm _ -> 1.005 +. Prng.float rng 0.01
                    | Env.Native | Env.Multikernel | Env.Docker -> 1.01 +. Prng.float rng 0.03
                in
                Service.handle compiled ~env ~rank ~rng ~hw_dilation ();
                incr completed_in_iter;
                (if !completed_in_iter >= config.requests_per_iteration then
                   match !iteration_waiter with
                   | Some wake ->
                       iteration_waiter := None;
                       wake ()
                   | None -> ());
                serve ()
          in
          serve ()))
    workers;
  let durations = ref [] in
  let dropped = ref 0 in
  let total_iters = config.warmup_iterations + config.sim_iterations_per_node in
  let finished = ref false in
  let client_rng = Prng.split (Engine.rng engine) "client" in
  Engine.spawn engine (fun () ->
      for iter = 0 to total_iters - 1 do
        let start = Engine.now engine in
        completed_in_iter := 0;
        for _ = 1 to config.requests_per_iteration do
          let gap = -.Float.log (1.0 -. Prng.uniform client_rng) /. rate in
          Engine.delay gap;
          Mailbox.send mailbox (Engine.now engine)
        done;
        (* Wait until the whole burst has been served.  With every
           worker permanently crashed there is no one left to wake us:
           give up on the remaining iterations instead of parking
           forever. *)
        if !completed_in_iter < config.requests_per_iteration && !live > 0 then
          Engine.suspend (fun wake -> iteration_waiter := Some wake);
        if iter >= config.warmup_iterations then
          if !lost_for_good then incr dropped
          else durations := (Engine.now engine -. start) :: !durations
      done;
      finished := true);
  Engine.run ~stop:(fun () -> !finished || (!live = 0 && !lost_for_good)) engine;
  {
    durations = Array.of_list (List.rev !durations);
    node_crashes = !crashes;
    node_restarts = !restarts;
    node_dropped = !dropped;
  }

(* Each node simulation is self-contained (own engine, own PRNG stream
   derived from [seed + node * 7919]), so the replica pool can fan nodes
   across domains; [Pool.map] returns results in node order, keeping the
   pooled durations bit-identical to the sequential run.  Callers that
   attach non-thread-safe observers ([on_engine]/[on_env], e.g. the
   sanitizers' probes) must not pass [par]. *)
let simulate_nodes ~par ~app ~kind ~contended ~config ~noise_corpus ~on_engine
    ~on_env =
  let cell node =
    simulate_node ~app ~kind ~contended ~config ~noise_corpus
      ~node_seed:(config.seed + (node * 7919))
      ~on_engine ~on_env
  in
  let nodes = List.init config.nodes_simulated Fun.id in
  match par with
  | Some pool -> Ksurf_par.Pool.map ~pool cell nodes
  | None -> List.map cell nodes

let default_noise_corpus ~contended noise_corpus =
  match noise_corpus with
  | Some c -> c
  | None ->
      if contended then
        (Ksurf_syzgen.Generator.run ()).Ksurf_syzgen.Generator.corpus
      else
        (* Unused, but keep the type simple: a minimal corpus. *)
        (Ksurf_syzgen.Generator.run
           ~params:
             {
               Ksurf_syzgen.Generator.default_params with
               Ksurf_syzgen.Generator.target_programs = 1;
             }
           ())
          .Ksurf_syzgen.Generator.corpus

let barrier_cost_for ~kind ~nodes_total =
  let per_party =
    match kind with
    | Env.Kvm virt -> 1_500.0 +. virt.Ksurf_virt.Virt_config.virtio_net_per_msg
    | Env.Native | Env.Multikernel | Env.Docker -> 1_800.0
  in
  per_party
  *. Float.ceil (Float.log (float_of_int nodes_total) /. Float.log 2.0)

(* The empirical iteration pool alone — for callers (the recovery study)
   that sweep many supervised syntheses over one set of simulated
   nodes. *)
let pool ~app ~kind ~contended ?(config = default_config) ?noise_corpus
    ?(on_engine = fun (_ : Engine.t) -> ())
    ?(on_env = fun (_ : Env.t) -> ()) ?par () =
  if config.nodes_simulated < 1 then invalid_arg "Cluster.pool: need >= 1 node";
  let noise_corpus = default_noise_corpus ~contended noise_corpus in
  let nodes =
    simulate_nodes ~par ~app ~kind ~contended ~config ~noise_corpus ~on_engine
      ~on_env
  in
  Array.concat (List.map (fun n -> n.durations) nodes)

let run ~app ~kind ~contended ?(config = default_config) ?noise_corpus
    ?(on_engine = fun (_ : Engine.t) -> ())
    ?(on_env = fun (_ : Env.t) -> ()) ?recovery ?plan ?resume_from ?par () =
  if config.nodes_simulated < 1 then invalid_arg "Cluster.run: need >= 1 node";
  let noise_corpus = default_noise_corpus ~contended noise_corpus in
  let nodes = simulate_nodes ~par ~app ~kind ~contended ~config ~noise_corpus
      ~on_engine ~on_env in
  let pool = Array.concat (List.map (fun n -> n.durations) nodes) in
  let sum f = List.fold_left (fun acc n -> acc + f n) 0 nodes in
  let node_crashes = sum (fun n -> n.node_crashes) in
  let node_restarts = sum (fun n -> n.node_restarts) in
  let samples_dropped = sum (fun n -> n.node_dropped) in
  if Array.length pool = 0 then failwith "Cluster.run: no iteration samples";
  (* Synthesise the BSP runtime: nodes are independent given the
     barrier, so each global iteration lasts as long as the slowest of
     [nodes_total] draws from the empirical iteration distribution.  We
     use the exact expectation of that maximum under the empirical CDF,
     E[max] = sum_k x_(k) * [ (k/n)^N - ((k-1)/n)^N ], rather than a
     Monte-Carlo resample: the estimate is then deterministic in the
     pool, so iso-vs-contended comparisons are free of resampling
     noise. *)
  let barrier_cost = barrier_cost_for ~kind ~nodes_total:config.nodes_total in
  let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr) in
  let sorted = Quantile.sorted_copy pool in
  let n = float_of_int (Array.length sorted) in
  let power frac = Float.pow frac (float_of_int config.nodes_total) in
  let expected_max = ref 0.0 in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      expected_max := !expected_max +. (x *. (power (k /. n) -. power ((k -. 1.0) /. n))))
    sorted;
  let runtime_ns =
    float_of_int config.iterations *. (!expected_max +. barrier_cost)
  in
  match recovery with
  | None ->
      {
        app_name = app.Apps.name;
        kind = Env.kind_name kind;
        contended;
        runtime_ns;
        node_mean_iter_ns = mean pool;
        node_p99_iter_ns = Quantile.p99 pool;
        straggler_factor = !expected_max /. mean pool;
        iteration_samples = Array.length pool;
        policy = "none";
        degraded = samples_dropped > 0;
        survivors = config.nodes_total;
        crashes = node_crashes;
        restarts = node_restarts;
        backups = 0;
        samples_dropped;
      }
  | Some rconfig ->
      (* Supervised mode: replace the closed-form order statistic with
         the superstep-by-superstep supervisor over the same pool.  The
         cluster geometry wins over whatever the recovery config says
         about it, so one [config] describes the experiment. *)
      let rconfig =
        {
          rconfig with
          Supervisor.nodes = config.nodes_total;
          iterations = config.iterations;
          barrier_cost_ns = barrier_cost;
          seed = config.seed;
        }
      in
      let outcome =
        Supervisor.run ~pool ~config:rconfig ?plan ?resume_from ~on_engine ()
      in
      {
        app_name = app.Apps.name;
        kind = Env.kind_name kind;
        contended;
        runtime_ns = outcome.Supervisor.runtime_ns;
        node_mean_iter_ns = mean pool;
        node_p99_iter_ns = Quantile.p99 pool;
        straggler_factor = outcome.Supervisor.straggler_factor;
        iteration_samples = Array.length pool;
        policy = outcome.Supervisor.policy;
        degraded = outcome.Supervisor.degraded || samples_dropped > 0;
        survivors = outcome.Supervisor.survivors;
        crashes = node_crashes + outcome.Supervisor.crashes;
        restarts = node_restarts + outcome.Supervisor.restarts;
        backups = outcome.Supervisor.backups;
        samples_dropped;
      }

let relative_loss ~isolated ~contended =
  100.0 *. (contended.runtime_ns -. isolated.runtime_ns) /. isolated.runtime_ns
