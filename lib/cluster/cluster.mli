(** The 64-node BSP experiment (§6.3 / Figure 4).

    The paper's harness deploys each tailbench client/server pair on
    every node of a 64-node Chameleon partition; each node issues only
    local requests, runs a fixed number of requests per iteration, and
    global barrier synchronisation joins the nodes between iterations —
    the timing structure of a bulk-synchronous-parallel application.

    Because no inter-node traffic is on the critical path, nodes are
    statistically independent given the barrier.  We exploit that: a
    small number of nodes are simulated in full (kernel model, noise
    co-runners and all), their per-iteration durations pooled, and the
    64-node runtime synthesised as the sum over iterations of the
    maximum of 64 draws from the pooled empirical distribution plus the
    barrier cost — the exact order statistic the paper's straggler
    effect rests on.  This is the documented substitution for physical
    nodes (DESIGN.md). *)

type config = {
  nodes_total : int;  (** 64 in the paper *)
  nodes_simulated : int;  (** fully simulated nodes feeding the pool *)
  iterations : int;  (** barrier-synchronised iterations (paper: 50) *)
  sim_iterations_per_node : int;  (** iteration samples gathered per node *)
  warmup_iterations : int;  (** leading samples discarded per node *)
  requests_per_iteration : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Ksurf_env.Machine.t;
  seed : int;
}

val default_config : config
(** 64 nodes (3 simulated), 50 iterations from 50 samples/node (2
    warm-up), 25 requests/iteration, 4 x 12-core units on a Chameleon
    Haswell node. *)

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  runtime_ns : float;  (** synthesised 64-node runtime, Figure 4(a)/(b) *)
  node_mean_iter_ns : float;  (** mean single-node iteration *)
  node_p99_iter_ns : float;
  straggler_factor : float;
      (** mean(max over nodes) / mean(single node): BSP amplification *)
  iteration_samples : int;
  policy : string;  (** recovery policy, ["none"] unsupervised *)
  degraded : bool;  (** membership shrank or samples were dropped *)
  survivors : int;  (** live ranks at the end of the run *)
  crashes : int;  (** node-simulation + supervised-run crashes *)
  restarts : int;
  backups : int;  (** speculative executions launched *)
  samples_dropped : int;
      (** iteration samples discarded because a permanent rank crash
          left them timed with fewer serving cores *)
}

val pool :
  app:Ksurf_tailbench.Apps.t ->
  kind:Ksurf_env.Env.kind ->
  contended:bool ->
  ?config:config ->
  ?noise_corpus:Ksurf_syzgen.Corpus.t ->
  ?on_engine:(Ksurf_sim.Engine.t -> unit) ->
  ?on_env:(Ksurf_env.Env.t -> unit) ->
  ?par:Ksurf_par.Pool.t ->
  unit ->
  float array
(** Just the pooled per-iteration durations from the simulated nodes —
    for callers (e.g. the recovery study) that sweep many supervised
    syntheses over one set of node simulations.  [par] fans the node
    simulations across a worker pool; each node is a self-contained
    engine with its own seed, and results merge in node order, so the
    pool is bit-identical to the sequential one.  Do not pass [par]
    together with non-thread-safe [on_engine]/[on_env] observers. *)

val barrier_cost_for : kind:Ksurf_env.Env.kind -> nodes_total:int -> float
(** The per-iteration global barrier cost the synthesis charges:
    log2(nodes) tree depth times a per-party cost that depends on the
    transport (virtio for KVM). *)

val run :
  app:Ksurf_tailbench.Apps.t ->
  kind:Ksurf_env.Env.kind ->
  contended:bool ->
  ?config:config ->
  ?noise_corpus:Ksurf_syzgen.Corpus.t ->
  ?on_engine:(Ksurf_sim.Engine.t -> unit) ->
  ?on_env:(Ksurf_env.Env.t -> unit) ->
  ?recovery:Ksurf_recov.Supervisor.config ->
  ?plan:Ksurf_fault.Plan.t ->
  ?resume_from:string ->
  ?par:Ksurf_par.Pool.t ->
  unit ->
  result
(** One cell of Figure 4.  [on_engine] is called on each engine (node
    simulations, and each supervised superstep) right after creation —
    the hook sanitizers use to attach probes.  [on_env] is called on
    each node deployment so fault plans can be armed; a [Rank_crash]
    with no restart drops the node's post-crash samples (see
    [samples_dropped]) instead of polluting the pool.

    With [recovery], the closed-form order statistic is replaced by the
    elastic-membership supervisor ({!Ksurf_recov.Supervisor}): [plan]
    feeds its rank crashes in, [resume_from] restarts from a checkpoint,
    and the geometry fields of the recovery config (nodes, iterations,
    barrier cost, seed) are taken from [config].  Deterministic for a
    given seed either way; [par] parallelises the node simulations
    (see {!pool}). *)

val relative_loss : isolated:result -> contended:result -> float
(** Figure 4(c): percent runtime increase from isolated to contended. *)
