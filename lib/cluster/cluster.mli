(** The 64-node BSP experiment (§6.3 / Figure 4).

    The paper's harness deploys each tailbench client/server pair on
    every node of a 64-node Chameleon partition; each node issues only
    local requests, runs a fixed number of requests per iteration, and
    global barrier synchronisation joins the nodes between iterations —
    the timing structure of a bulk-synchronous-parallel application.

    Because no inter-node traffic is on the critical path, nodes are
    statistically independent given the barrier.  We exploit that: a
    small number of nodes are simulated in full (kernel model, noise
    co-runners and all), their per-iteration durations pooled, and the
    64-node runtime synthesised as the sum over iterations of the
    maximum of 64 draws from the pooled empirical distribution plus the
    barrier cost — the exact order statistic the paper's straggler
    effect rests on.  This is the documented substitution for physical
    nodes (DESIGN.md). *)

type config = {
  nodes_total : int;  (** 64 in the paper *)
  nodes_simulated : int;  (** fully simulated nodes feeding the pool *)
  iterations : int;  (** barrier-synchronised iterations (paper: 50) *)
  sim_iterations_per_node : int;  (** iteration samples gathered per node *)
  warmup_iterations : int;  (** leading samples discarded per node *)
  requests_per_iteration : int;
  util_target : float;
  units : int;
  unit_cores : int;
  unit_mem_mb : int;
  machine : Ksurf_env.Machine.t;
  seed : int;
}

val default_config : config
(** 64 nodes (3 simulated), 50 iterations from 50 samples/node (2
    warm-up), 25 requests/iteration, 4 x 12-core units on a Chameleon
    Haswell node. *)

type result = {
  app_name : string;
  kind : string;
  contended : bool;
  runtime_ns : float;  (** synthesised 64-node runtime, Figure 4(a)/(b) *)
  node_mean_iter_ns : float;  (** mean single-node iteration *)
  node_p99_iter_ns : float;
  straggler_factor : float;
      (** mean(max over nodes) / mean(single node): BSP amplification *)
  iteration_samples : int;
}

val run :
  app:Ksurf_tailbench.Apps.t ->
  kind:Ksurf_env.Env.kind ->
  contended:bool ->
  ?config:config ->
  ?noise_corpus:Ksurf_syzgen.Corpus.t ->
  ?on_engine:(Ksurf_sim.Engine.t -> unit) ->
  unit ->
  result
(** One cell of Figure 4.  [on_engine] is called on each simulated
    node's engine right after creation — the hook sanitizers use to
    attach probes.  Deterministic for a given seed. *)

val relative_loss : isolated:result -> contended:result -> float
(** Figure 4(c): percent runtime increase from isolated to contended. *)
