(** ALICE-style crash-state enumeration for durable writers.

    {!record} captures the exact host-I/O op trace of a writer run
    (journal append, checkpoint write, export), with paths made
    relative to a root directory.  {!enumerate} then replays every
    crash-point prefix of that trace against a small filesystem model
    that distinguishes {e volatile} effects (applied, but not yet
    guaranteed) from {e durable} ones (file data fsynced; directory
    entries — creates, renames, removes — fsynced via their parent
    directory), and yields the legal on-disk states a crash at that
    point can leave:

    - {b durable-min}: only guaranteed effects survive — un-fsynced
      file data is lost (zero-length files), un-fsynced directory
      updates revert (a rename is forgotten, the old version
      reappears);
    - {b torn}: directory updates applied, but in-flight file data cut
      mid-write;
    - {b all-applied}: every effect reached disk.

    States are deduplicated by content (invariant under temp-file
    naming, so enumeration counts are deterministic across parallel
    runs).  {!materialize} writes a state into a scratch directory so
    recovery can be run against it for real. *)

type state = { files : (string * string) list }
(** Root-relative path [->] content, sorted by path.  Directories are
    implied by the paths. *)

val record :
  root:string -> (unit -> 'a) -> ('a, exn) result * Ksurf_util.Iohook.op list
(** Run the callback with a recording hook installed; returns its
    outcome (exceptions are captured, so a workload that legitimately
    fails still yields its trace) and the in-[root] op trace with
    root-relative paths. *)

val crash_points : Ksurf_util.Iohook.op list -> int
(** Number of crash-point prefixes [enumerate] considers ([n + 1] for
    a trace of [n] ops). *)

val enumerate : Ksurf_util.Iohook.op list -> (int * state) list
(** All distinct crash states, tagged with the prefix length that
    produces them; globally deduplicated. *)

val final_durable : Ksurf_util.Iohook.op list -> state
(** The durable-min state after the {e complete} trace — what must
    survive a crash that happens after the writer returned.  Recovery
    from this state must find everything the writer promised. *)

val materialize : dir:string -> state -> unit
(** Reset [dir] to exactly [state]: existing contents are removed,
    files (and implied subdirectories) written raw.  [dir] itself is
    created if missing. *)
