(* ALICE-style crash-state enumeration.

   A writer run is recorded as its op trace; each crash-point prefix
   is then replayed against a tiny filesystem model that keeps two
   views per object: the volatile one (op applied) and the durable one
   (op guaranteed).  File data becomes durable at a file fsync —
   tracked by inode identity, so data synced into a temp file stays
   durable through the rename.  Directory entries (creates, renames,
   removes) become durable at an fsync of their parent directory,
   which is exactly the guarantee write_atomic's post-rename directory
   fsync buys: without it, the durable view of a "completed" write
   still shows the old version.

   Per prefix we emit three representative crash states rather than
   the full reordering lattice: durable-min (only guarantees survive —
   zero-length un-synced files, forgotten renames), torn (entries
   applied, in-flight data cut mid-write), and all-applied (a friendly
   disk).  These three bracket the states real filesystems leave and
   already indict every bug the enumerator is after: the old
   un-fsynced-rename gap shows up in durable-min, torn-write
   acceptance in torn, temp-file litter in all-applied. *)

module Iohook = Ksurf_util.Iohook
module Fileio = Ksurf_util.Fileio
module Stable_hash = Ksurf_util.Stable_hash

type state = { files : (string * string) list }

(* --- recording --------------------------------------------------------- *)

let strip_root ~root path =
  if path = root then Some "."
  else
    let n = String.length root and m = String.length path in
    if m > n + 1 && String.sub path 0 n = root && path.[n] = '/' then
      Some (String.sub path (n + 1) (m - n - 1))
    else None

let record ~root f =
  let ops = ref [] in
  let push op = ops := op :: !ops in
  let strip = strip_root ~root in
  let handler (op : Iohook.op) : Iohook.outcome =
    (match op with
    | Iohook.Open { path } ->
        Option.iter (fun path -> push (Iohook.Open { path })) (strip path)
    | Iohook.Write { path; content } ->
        Option.iter
          (fun path -> push (Iohook.Write { path; content }))
          (strip path)
    | Iohook.Fsync { path } ->
        Option.iter (fun path -> push (Iohook.Fsync { path })) (strip path)
    | Iohook.Fsync_dir { path } ->
        Option.iter (fun path -> push (Iohook.Fsync_dir { path })) (strip path)
    | Iohook.Rename { src; dst } -> (
        match (strip src, strip dst) with
        | Some src, Some dst -> push (Iohook.Rename { src; dst })
        | _ -> ())
    | Iohook.Remove { path } ->
        Option.iter (fun path -> push (Iohook.Remove { path })) (strip path)
    | Iohook.Read { path } ->
        Option.iter (fun path -> push (Iohook.Read { path })) (strip path)
    | Iohook.Mkdir { path } ->
        Option.iter (fun path -> push (Iohook.Mkdir { path })) (strip path));
    Iohook.Proceed
  in
  let result =
    match Iohook.with_handler handler f with
    | v -> Ok v
    | exception e -> Error e
  in
  (result, List.rev !ops)

(* --- the filesystem model ---------------------------------------------- *)

module SM = Map.Make (String)
module IM = Map.Make (Int)

type sim = {
  next_id : int;
  vol : int SM.t;  (* entry path -> inode, volatile view *)
  dur : int SM.t;  (* entry path -> inode, durable view *)
  vol_dirs : unit SM.t;  (* directories created during the trace *)
  dur_dirs : unit SM.t;
  content : string IM.t;  (* inode -> volatile content *)
  synced : string IM.t;  (* inode -> last fsynced content *)
}

let empty_sim =
  {
    next_id = 0;
    vol = SM.empty;
    dur = SM.empty;
    vol_dirs = SM.empty;
    dur_dirs = SM.empty;
    content = IM.empty;
    synced = IM.empty;
  }

let apply sim (op : Iohook.op) =
  match op with
  | Iohook.Open { path } ->
      let id = sim.next_id in
      {
        sim with
        next_id = id + 1;
        vol = SM.add path id sim.vol;
        content = IM.add id "" sim.content;
      }
  | Iohook.Write { path; content } -> (
      match SM.find_opt path sim.vol with
      | Some id -> { sim with content = IM.add id content sim.content }
      | None -> sim)
  | Iohook.Fsync { path } -> (
      match SM.find_opt path sim.vol with
      | Some id ->
          let c = Option.value ~default:"" (IM.find_opt id sim.content) in
          { sim with synced = IM.add id c sim.synced }
      | None -> sim)
  | Iohook.Fsync_dir { path = d } ->
      (* The durable view of directory [d] snaps to the volatile one:
         child entries (and child directories) created, renamed in, or
         removed since the last sync all become guaranteed at once. *)
      let child p = Filename.dirname p = d in
      let merge keep extra =
        SM.union (fun _ v _ -> Some v) (SM.filter (fun p _ -> child p) extra)
          (SM.filter (fun p _ -> not (child p)) keep)
      in
      {
        sim with
        dur = merge sim.dur sim.vol;
        dur_dirs = merge sim.dur_dirs sim.vol_dirs;
      }
  | Iohook.Rename { src; dst } -> (
      match SM.find_opt src sim.vol with
      | Some id -> { sim with vol = SM.add dst id (SM.remove src sim.vol) }
      | None -> sim)
  | Iohook.Remove { path } -> { sim with vol = SM.remove path sim.vol }
  | Iohook.Mkdir { path } -> { sim with vol_dirs = SM.add path () sim.vol_dirs }
  | Iohook.Read _ -> sim

(* --- crash-state flavours ---------------------------------------------- *)

let sort_files l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* The torture root pre-exists (and is durable); only directories
   created during the trace need their own entry synced. *)
let rec dir_durable sim d =
  d = "." || d = "" || d = "/"
  || (SM.mem d sim.dur_dirs && dir_durable sim (Filename.dirname d))

let durable_min sim =
  let files =
    SM.fold
      (fun path id acc ->
        if dir_durable sim (Filename.dirname path) then
          (* Entry guaranteed; data only up to its last fsync — a file
             whose bytes were never synced survives as zero-length. *)
          (path, Option.value ~default:"" (IM.find_opt id sim.synced)) :: acc
        else acc)
      sim.dur []
  in
  { files = sort_files files }

let torn sim =
  let files =
    SM.fold
      (fun path id acc ->
        let vol_c = Option.value ~default:"" (IM.find_opt id sim.content) in
        let c =
          match IM.find_opt id sim.synced with
          | Some s when s = vol_c -> vol_c
          | _ -> String.sub vol_c 0 (String.length vol_c / 2)
        in
        (path, c) :: acc)
      sim.vol []
  in
  { files = sort_files files }

let all_applied sim =
  let files =
    SM.fold
      (fun path id acc ->
        (path, Option.value ~default:"" (IM.find_opt id sim.content)) :: acc)
      sim.vol []
  in
  { files = sort_files files }

(* --- dedup ------------------------------------------------------------- *)

(* Temp-file names embed pid + sequence numbers, which vary across
   processes and job counts; canonicalise them by (directory, content)
   so state identity — and therefore enumeration counts — is invariant
   under temp naming.  Same-content temp twins are interchangeable, so
   the disambiguating index is canonical whatever order they appear. *)
let canonical st =
  let dup = Hashtbl.create 4 in
  st.files
  |> List.map (fun (p, c) ->
         let name =
           if Fileio.is_tmp_name (Filename.basename p) then begin
             let key =
               Printf.sprintf "%s/.tmp-%x" (Filename.dirname p)
                 (Stable_hash.string c)
             in
             let n = try Hashtbl.find dup key with Not_found -> 0 in
             Hashtbl.replace dup key (n + 1);
             Printf.sprintf "%s#%d" key n
           end
           else p
         in
         name ^ "\x00" ^ c)
  |> List.sort String.compare
  |> String.concat "\x01"

let crash_points ops = List.length ops + 1

let enumerate ops =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add k st =
    let key = canonical st in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := (k, st) :: !out
    end
  in
  let sim = ref empty_sim in
  add 0 (durable_min !sim);
  List.iteri
    (fun i op ->
      sim := apply !sim op;
      let k = i + 1 in
      add k (durable_min !sim);
      add k (torn !sim);
      add k (all_applied !sim))
    ops;
  List.rev !out

let final_durable ops = durable_min (List.fold_left apply empty_sim ops)

(* --- materialisation --------------------------------------------------- *)

let rec rm_tree path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun entry -> rm_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" then ()
  else
    match Unix.mkdir d 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        mkdir_p (Filename.dirname d);
        Unix.mkdir d 0o755

(* Writing a crashed disk image must place raw, possibly-torn bytes at
   exact paths — going through the atomic writer under test would
   defeat the point (and pollute any ambient op trace). *)
let write_raw path content =
  let flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] in
  (* klint: allow — a crashed disk image is raw, torn bytes by design *)
  let fd = Unix.openfile path flags 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length content in
      let rec go off =
        if off < n then go (off + Unix.write_substring fd content off (n - off))
      in
      go 0)

let materialize ~dir st =
  rm_tree dir;
  mkdir_p dir;
  List.iter
    (fun (p, c) ->
      let path = Filename.concat dir p in
      mkdir_p (Filename.dirname path);
      write_raw path c)
    st.files
