(* Durplan -> Iohook handler.

   The plan is folded into one flat configuration (rates summed and
   clamped, crash ops sorted), then each in-scope op consults the
   mechanisms in severity order: scheduled crash, ENOSPC window,
   torn write, dropped fsync, hard EIO, transient.  Each mechanism
   draws from its own Prng.split stream so adding, say, a torn-write
   action to a plan never perturbs which ops the transient stream
   hits — plans compose without reshuffling each other's faults. *)

module Iohook = Ksurf_util.Iohook
module Prng = Ksurf_util.Prng

type stats = {
  ops : int;
  transients : int;
  enospc : int;
  eio : int;
  torn : int;
  fsync_dropped : int;
  crashes : int;
}

type t = {
  root : string;
  transient_rate : float;
  eintr_share : float;
  enospc_windows : (int * int) list;
  eio_rate : float;
  torn_rate : float;
  torn_keep : float;
  fsync_drop_rate : float;
  mutable crash_ops : int list;  (* sorted; each fires once *)
  p_transient : Prng.t;
  p_errno : Prng.t;
  p_eio : Prng.t;
  p_torn : Prng.t;
  p_fsync : Prng.t;
  mutable op_index : int;
  mutable n_transients : int;
  mutable n_enospc : int;
  mutable n_eio : int;
  mutable n_torn : int;
  mutable n_fsync_dropped : int;
  mutable n_crashes : int;
}

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let make ~root ~seed (plan : Durplan.t) =
  let base = Prng.create seed in
  let transient_rate = ref 0.0
  and eintr_share = ref 0.5
  and enospc_windows = ref []
  and eio_rate = ref 0.0
  and torn_rate = ref 0.0
  and torn_keep = ref 0.5
  and fsync_drop_rate = ref 0.0
  and crash_ops = ref [] in
  List.iter
    (function
      | Durplan.Transient { rate; eintr_share = share } ->
          transient_rate := !transient_rate +. rate;
          eintr_share := share
      | Durplan.Enospc_window { from_op; until_op } ->
          enospc_windows := (from_op, until_op) :: !enospc_windows
      | Durplan.Hard_eio { rate } -> eio_rate := !eio_rate +. rate
      | Durplan.Torn_write { rate; keep } ->
          torn_rate := !torn_rate +. rate;
          torn_keep := keep
      | Durplan.Fsync_drop { rate } ->
          fsync_drop_rate := !fsync_drop_rate +. rate
      | Durplan.Crash_at { op } -> crash_ops := op :: !crash_ops)
    plan.Durplan.actions;
  {
    root;
    transient_rate = clamp01 !transient_rate;
    eintr_share = clamp01 !eintr_share;
    enospc_windows = List.rev !enospc_windows;
    eio_rate = clamp01 !eio_rate;
    torn_rate = clamp01 !torn_rate;
    torn_keep = clamp01 !torn_keep;
    fsync_drop_rate = clamp01 !fsync_drop_rate;
    crash_ops = List.sort_uniq Int.compare !crash_ops;
    p_transient = Prng.split base "io-transient";
    p_errno = Prng.split base "io-errno";
    p_eio = Prng.split base "io-eio";
    p_torn = Prng.split base "io-torn";
    p_fsync = Prng.split base "io-fsync";
    op_index = 0;
    n_transients = 0;
    n_enospc = 0;
    n_eio = 0;
    n_torn = 0;
    n_fsync_dropped = 0;
    n_crashes = 0;
  }

let in_scope t path =
  let root = t.root and n = String.length path in
  let m = String.length root in
  m = 0 || (n >= m && String.sub path 0 m = root)

let space_consuming (op : Iohook.op) =
  match op with
  | Iohook.Open _ | Iohook.Write _ | Iohook.Rename _ | Iohook.Mkdir _ -> true
  | Iohook.Fsync _ | Iohook.Fsync_dir _ | Iohook.Remove _ | Iohook.Read _ ->
      false

let decide t (op : Iohook.op) : Iohook.outcome =
  if not (in_scope t (Iohook.path_of op)) then Iohook.Proceed
  else begin
    let i = t.op_index in
    t.op_index <- i + 1;
    match t.crash_ops with
    | at :: rest when i >= at ->
        t.crash_ops <- rest;
        t.n_crashes <- t.n_crashes + 1;
        Iohook.Crash
    | _ ->
        if
          space_consuming op
          && List.exists (fun (a, b) -> i >= a && i < b) t.enospc_windows
        then begin
          t.n_enospc <- t.n_enospc + 1;
          Iohook.Fail Unix.ENOSPC
        end
        else
          let is_write =
            match op with Iohook.Write _ -> true | _ -> false
          in
          let is_fsync =
            match op with
            | Iohook.Fsync _ | Iohook.Fsync_dir _ -> true
            | _ -> false
          in
          if is_write && Prng.chance t.p_torn t.torn_rate then begin
            t.n_torn <- t.n_torn + 1;
            Iohook.Torn t.torn_keep
          end
          else if is_fsync && Prng.chance t.p_fsync t.fsync_drop_rate then begin
            t.n_fsync_dropped <- t.n_fsync_dropped + 1;
            Iohook.Drop
          end
          else if Prng.chance t.p_eio t.eio_rate then begin
            t.n_eio <- t.n_eio + 1;
            Iohook.Fail Unix.EIO
          end
          else if Prng.chance t.p_transient t.transient_rate then begin
            t.n_transients <- t.n_transients + 1;
            if Prng.chance t.p_errno t.eintr_share then Iohook.Fail Unix.EINTR
            else Iohook.Fail Unix.EAGAIN
          end
          else Iohook.Proceed
  end

let handler t = decide t

let with_faults t f = Iohook.with_handler (decide t) f

let stats t =
  {
    ops = t.op_index;
    transients = t.n_transients;
    enospc = t.n_enospc;
    eio = t.n_eio;
    torn = t.n_torn;
    fsync_dropped = t.n_fsync_dropped;
    crashes = t.n_crashes;
  }

let op_index t = t.op_index
