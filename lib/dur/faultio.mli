(** Compile a {!Durplan} into a deterministic host-I/O fault handler.

    [make ~root ~seed plan] yields an injector whose handler perturbs
    only operations on paths under [root] — everything else (the outer
    sweep's own journal, exports from other cells) proceeds untouched
    and does not advance the op index.  Decisions are driven by
    {!Ksurf_util.Prng} streams split per mechanism, so the same
    [(plan, seed, workload)] triple always injects the same faults —
    the kfault determinism discipline at the I/O boundary.

    The injector is stateful (op index, one-shot crash schedule,
    counters) and survives across {!with_faults} scopes: a torture
    cell re-enters it for each recovery attempt, so an ENOSPC window
    opened during the original run eventually clears as recovery
    retries push the op index past it. *)

type t

type stats = {
  ops : int;  (** in-scope operations consulted *)
  transients : int;  (** injected EINTR/EAGAIN *)
  enospc : int;  (** injected ENOSPC (window) *)
  eio : int;  (** injected hard EIO *)
  torn : int;  (** torn writes (each also crashes) *)
  fsync_dropped : int;  (** silently-dropped fsyncs *)
  crashes : int;  (** crash-at-op firings *)
}

val make : root:string -> seed:int -> Durplan.t -> t

val handler : t -> Ksurf_util.Iohook.handler

val with_faults : t -> (unit -> 'a) -> 'a
(** Run the callback with this injector installed as the domain's
    I/O hook (restoring the previous hook afterwards). *)

val stats : t -> stats
val op_index : t -> int
