(* Crash-consistency torture cells.

   Each writer path gets the same treatment a kernel path gets from
   kfault: a deterministic workload, a typed fault schedule, and
   assertions strong enough to indict the writer rather than merely
   crash it.  The two phases are complementary — enumeration proves
   every crash point of the clean trace recovers (the ALICE question),
   live runs prove the retry/deferral/sweep machinery converges when
   faults actually fire (the LiveStack question). *)

module Iohook = Ksurf_util.Iohook
module Fileio = Ksurf_util.Fileio
module Prng = Ksurf_util.Prng
module Journal = Ksurf_recov.Journal
module Checkpoint = Ksurf_recov.Checkpoint
module Csv = Ksurf_report.Csv

type kind = Journal_path | Checkpoint_path | Export_path

let all_kinds = [ Journal_path; Checkpoint_path; Export_path ]

let kind_name = function
  | Journal_path -> "journal"
  | Checkpoint_path -> "checkpoint"
  | Export_path -> "export"

let kind_of_name = function
  | "journal" -> Some Journal_path
  | "checkpoint" -> Some Checkpoint_path
  | "export" -> Some Export_path
  | _ -> None

type config = {
  kind : kind;
  dose : float;
  runs : int;
  seed : int;
  scratch : string;
}

type result = {
  kind : string;
  dose : float;
  trace_ops : int;
  crash_points : int;
  crash_states : int;
  enum_violations : int;
  torn_refused : int;
  live_runs : int;
  live_ok : int;
  recovery_ok : float;
  crashes : int;
  transients : int;
  enospc : int;
  eio : int;
  torn_writes : int;
  fsync_dropped : int;
  deferred_persists : int;
  cells_lost : int;
  double_runs : int;
  litter : int;
  litter_after : int;
}

(* --- small helpers ----------------------------------------------------- *)

let max_attempts = 600
(* Each failed attempt advances the injector's op index by at least
   one, so this bound outlasts the widest scaled ENOSPC window (40 ops
   x dose) with a wide margin; hitting it means recovery is not
   converging, which the cell reports as a failed run. *)

let read_file_opt path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let rec count_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          let p = Filename.concat dir entry in
          if Sys.is_directory p then n + count_tmp p
          else if Fileio.is_tmp_name entry then n + 1
          else n)
        0 entries

let fresh_dir dir =
  Crashsim.materialize ~dir { Crashsim.files = [] }

(* Per-run mutable tallies, folded into the cell result. *)
type tally = {
  mutable t_ok : int;
  mutable t_cells_lost : int;
  mutable t_double_runs : int;
  mutable t_litter : int;
  mutable t_litter_after : int;
  mutable t_deferred : int;
  mutable t_enum_violations : int;
  mutable t_torn_refused : int;
}

let tally () =
  {
    t_ok = 0;
    t_cells_lost = 0;
    t_double_runs = 0;
    t_litter = 0;
    t_litter_after = 0;
    t_deferred = 0;
    t_enum_violations = 0;
    t_torn_refused = 0;
  }

(* --- journal workload -------------------------------------------------- *)

let journal_cells = List.init 16 (Printf.sprintf "c%02d")
let journal_flush_every = 4

let journal_file dir = Filename.concat dir "journal"

(* Run the journalled sweep to completion under [fio], recovering from
   every simulated death.  Returns false if recovery failed to
   converge within the attempt budget. *)
let journal_run ~fio ~dir ~t =
  let jp = journal_file dir in
  let rec attempt n =
    if n > max_attempts then false
    else begin
      (* What the disk promises before this attempt: re-executing any
         of these is a double-run (a recorded cell that resume must
         skip).  Read outside the fault scope so the assertion itself
         is not part of the workload. *)
      let promised = Journal.cells (Journal.load ~path:jp ()) in
      match
        Faultio.with_faults fio (fun () ->
            let j = Journal.load ~flush_every:journal_flush_every ~path:jp () in
            List.iter
              (fun k ->
                if not (Journal.mem j k) then begin
                  if List.mem k promised then t.t_double_runs <- t.t_double_runs + 1;
                  Journal.record j k
                end)
              journal_cells;
            (* Drain deferred persists: each failed flush advances the
               op index, so an ENOSPC window eventually clears. *)
            let rec drain m =
              Journal.flush j;
              if Journal.persist_pending j && m < max_attempts then drain (m + 1)
            in
            drain 0;
            t.t_deferred <- t.t_deferred + Journal.deferred j;
            Journal.persist_pending j)
      with
      | still_pending -> not still_pending
      | exception (Iohook.Crashed _ | Fileio.Io_error _) ->
          (* Simulated death (or unretryable I/O failure): recover —
             sweep the litter the dead process left, then resume. *)
          t.t_litter <- t.t_litter + Faultio.with_faults fio (fun () ->
              try Fileio.sweep_tmp ~dir with
              | Iohook.Crashed _ | Fileio.Io_error _ -> 0);
          attempt (n + 1)
    end
  in
  let converged = attempt 0 in
  if converged then begin
    (* Byte-level verdict, outside the fault scope. *)
    let final = Journal.cells (Journal.load ~path:jp ()) in
    let lost =
      List.length (List.filter (fun k -> not (List.mem k final)) journal_cells)
    in
    t.t_cells_lost <- t.t_cells_lost + lost;
    let litter_after = count_tmp dir in
    t.t_litter_after <- t.t_litter_after + litter_after;
    if lost = 0 && litter_after = 0 then t.t_ok <- t.t_ok + 1;
    lost = 0 && litter_after = 0
  end
  else false

let journal_clean dir =
  let j = Journal.load ~flush_every:journal_flush_every ~path:(journal_file dir) () in
  List.iter (Journal.record j) journal_cells;
  Journal.flush j

(* Recovery from one enumerated crash state: sweep, load, finish the
   sweep, and require the journal to end complete with nothing
   double-run and nothing outside the expected key set. *)
let journal_check_state ~dir ~t =
  let jp = journal_file dir in
  match
    let _swept = Fileio.sweep_tmp ~dir in
    let j = Journal.load ~flush_every:journal_flush_every ~path:jp () in
    let loaded = Journal.cells j in
    let subset =
      List.for_all (fun k -> List.mem k journal_cells) loaded
    in
    List.iter
      (fun k -> if not (Journal.mem j k) then Journal.record j k)
      journal_cells;
    Journal.flush j;
    let final = Journal.cells (Journal.load ~path:jp ()) in
    subset
    && List.for_all (fun k -> List.mem k final) journal_cells
    && count_tmp dir = 0
  with
  | true -> ()
  | false -> t.t_enum_violations <- t.t_enum_violations + 1
  | exception _ -> t.t_enum_violations <- t.t_enum_violations + 1

(* --- checkpoint workload ----------------------------------------------- *)

let ckpt_versions = 5

let ckpt_file dir = Filename.concat dir "ckpt"

let ckpt_version i =
  {
    Checkpoint.superstep = i;
    runtime_ns = 1_000_000.0 +. (250_000.0 *. float_of_int i);
    membership = [ 0; 1; 2; 3 ];
    rejoins =
      (if i mod 2 = 1 then
         [ { Checkpoint.rj_rank = 2; rj_superstep = i + 1; rj_incident = i; rj_died_at = i - 1 } ]
       else []);
    incidents = i;
    prng_state = Int64.of_int (0x9e3779b9 + (i * 17));
    prng_seed = 42;
    crashes = i;
    restarts = i / 2;
    backups = 1;
    deaths = i;
    transitions = 2 * i;
    checkpoints = i + 1;
    degraded = false;
  }

let ckpt_is_version st =
  let rec go i =
    i < ckpt_versions && (st = ckpt_version i || go (i + 1))
  in
  go 0

let ckpt_run ~fio ~dir ~t =
  let path = ckpt_file dir in
  let rec attempt n =
    if n > max_attempts then false
    else begin
      (* Resume point from the disk (outside the fault scope); a
         checkpoint that parses must be one of the versions actually
         written — anything else is torn acceptance. *)
      let start =
        match Checkpoint.read ~path with
        | Ok st ->
            if ckpt_is_version st then st.Checkpoint.superstep + 1
            else begin
              t.t_enum_violations <- t.t_enum_violations + 1;
              0
            end
        | Error _ -> 0
      in
      match
        Faultio.with_faults fio (fun () ->
            for i = start to ckpt_versions - 1 do
              Checkpoint.write ~path (ckpt_version i)
            done)
      with
      | () -> true
      | exception (Iohook.Crashed _ | Fileio.Io_error _) ->
          t.t_litter <- t.t_litter + Faultio.with_faults fio (fun () ->
              try Fileio.sweep_tmp ~dir with
              | Iohook.Crashed _ | Fileio.Io_error _ -> 0);
          attempt (n + 1)
    end
  in
  let converged = attempt 0 in
  if converged then begin
    let ok =
      match Checkpoint.read ~path with
      | Ok st -> st = ckpt_version (ckpt_versions - 1)
      | Error _ -> false
    in
    let litter_after = count_tmp dir in
    t.t_litter_after <- t.t_litter_after + litter_after;
    if ok && litter_after = 0 then t.t_ok <- t.t_ok + 1;
    ok && litter_after = 0
  end
  else false

let ckpt_clean dir =
  for i = 0 to ckpt_versions - 1 do
    Checkpoint.write ~path:(ckpt_file dir) (ckpt_version i)
  done

let ckpt_check_state ~dir ~t =
  let path = ckpt_file dir in
  let _swept = try Fileio.sweep_tmp ~dir with Fileio.Io_error _ -> 0 in
  (match Checkpoint.read ~path with
  | Ok st ->
      (* Old or new version, never torn garbage accepted. *)
      if not (ckpt_is_version st) then
        t.t_enum_violations <- t.t_enum_violations + 1
  | Error _ ->
      (* Refusal is only legal when the bytes are not a complete
         checkpoint — i.e. absent, zero-length or torn. *)
      (match read_file_opt path with
      | None | Some "" -> ()
      | Some _ -> t.t_torn_refused <- t.t_torn_refused + 1));
  if count_tmp dir <> 0 then t.t_enum_violations <- t.t_enum_violations + 1

(* --- export workload --------------------------------------------------- *)

let export_file dir = Filename.concat dir "out.csv"

let export_header = [ "env"; "dose"; "p99_us" ]

let export_rows version =
  List.init 12 (fun i ->
      [
        (if i mod 2 = 0 then "native" else "kvm-64");
        Printf.sprintf "%d" version;
        Printf.sprintf "%.2f" (7.5 +. (1.75 *. float_of_int (i + version)));
      ])

let export_write ~dir version =
  Csv.write ~path:(export_file dir) ~header:export_header
    ~rows:(export_rows version)

(* Reference bytes of each complete export version, produced by a
   clean write into a private directory. *)
let export_reference ~scratch =
  let refdir = Filename.concat scratch "ref" in
  fresh_dir refdir;
  List.map
    (fun v ->
      export_write ~dir:refdir v;
      match read_file_opt (export_file refdir) with
      | Some bytes -> bytes
      | None -> "")
    [ 1; 2 ]

let export_run ~fio ~dir ~versions ~t =
  let v1, v2 = (List.nth versions 0, List.nth versions 1) in
  let path = export_file dir in
  let rec attempt n =
    if n > max_attempts then false
    else begin
      (* The invariant, checked at every recovery: the export is never
         partial — absent, old, or new, nothing in between. *)
      (match read_file_opt path with
      | None -> ()
      | Some bytes ->
          if bytes <> v1 && bytes <> v2 then
            t.t_enum_violations <- t.t_enum_violations + 1);
      match
        Faultio.with_faults fio (fun () ->
            export_write ~dir 1;
            export_write ~dir 2)
      with
      | () -> true
      | exception (Iohook.Crashed _ | Fileio.Io_error _) ->
          t.t_litter <- t.t_litter + Faultio.with_faults fio (fun () ->
              try Fileio.sweep_tmp ~dir with
              | Iohook.Crashed _ | Fileio.Io_error _ -> 0);
          attempt (n + 1)
    end
  in
  let converged = attempt 0 in
  if converged then begin
    let ok = read_file_opt path = Some v2 in
    let litter_after = count_tmp dir in
    t.t_litter_after <- t.t_litter_after + litter_after;
    if ok && litter_after = 0 then t.t_ok <- t.t_ok + 1;
    ok && litter_after = 0
  end
  else false

let export_clean dir =
  export_write ~dir 1;
  export_write ~dir 2

let export_check_state ~dir ~versions ~t =
  let v1, v2 = (List.nth versions 0, List.nth versions 1) in
  let _swept = try Fileio.sweep_tmp ~dir with Fileio.Io_error _ -> 0 in
  (match read_file_opt (export_file dir) with
  | None -> ()
  | Some bytes ->
      if bytes <> v1 && bytes <> v2 then
        t.t_enum_violations <- t.t_enum_violations + 1);
  if count_tmp dir <> 0 then t.t_enum_violations <- t.t_enum_violations + 1

(* --- the cell ---------------------------------------------------------- *)

let live_plan ~dose ~crash_op =
  let base = Option.get (Durplan.preset "io-mixed") in
  let scaled = Durplan.scale dose base in
  if dose <= 0.0 then scaled
  else
    {
      scaled with
      Durplan.actions = scaled.Durplan.actions @ [ Durplan.Crash_at { op = crash_op } ];
    }

(* Truncating a complete on-disk artefact mid-payload must be refused
   (checkpoint), dropped (journal line checksum) or — for the journal —
   at worst forget the torn tail, never invent state. *)
let synthetic_torn ~kind ~dir ~t clean_bytes =
  match kind with
  | Journal_path ->
      List.iter
        (fun frac ->
          let cut = int_of_float (frac *. float_of_int (String.length clean_bytes)) in
          Crashsim.materialize ~dir
            { Crashsim.files = [ ("journal", String.sub clean_bytes 0 cut) ] };
          (match Journal.cells (Journal.load ~path:(journal_file dir) ()) with
          | loaded ->
              if List.for_all (fun k -> List.mem k journal_cells) loaded then begin
                if List.length loaded < List.length journal_cells then
                  t.t_torn_refused <- t.t_torn_refused + 1
              end
              else t.t_enum_violations <- t.t_enum_violations + 1
          | exception _ -> t.t_enum_violations <- t.t_enum_violations + 1))
        [ 0.98; 0.6; 0.25 ]
  | Checkpoint_path ->
      List.iter
        (fun frac ->
          let cut = int_of_float (frac *. float_of_int (String.length clean_bytes)) in
          Crashsim.materialize ~dir
            { Crashsim.files = [ ("ckpt", String.sub clean_bytes 0 cut) ] };
          match Checkpoint.read ~path:(ckpt_file dir) with
          | Error _ -> t.t_torn_refused <- t.t_torn_refused + 1
          | Ok _ -> t.t_enum_violations <- t.t_enum_violations + 1)
        [ 0.95; 0.5 ]
  | Export_path -> ()

let run (cfg : config) =
  let t = tally () in
  Fileio.ensure_dir cfg.scratch;
  let versions =
    match cfg.kind with
    | Export_path -> export_reference ~scratch:cfg.scratch
    | _ -> []
  in

  (* Phase 1: enumeration over the clean trace. *)
  let trace_dir = Filename.concat cfg.scratch "trace" in
  fresh_dir trace_dir;
  let outcome, trace =
    Crashsim.record ~root:trace_dir (fun () ->
        match cfg.kind with
        | Journal_path -> journal_clean trace_dir
        | Checkpoint_path -> ckpt_clean trace_dir
        | Export_path -> export_clean trace_dir)
  in
  (match outcome with
  | Ok () -> ()
  | Error _ -> t.t_enum_violations <- t.t_enum_violations + 1);
  let states = Crashsim.enumerate trace in
  let enum_dir = Filename.concat cfg.scratch "enum" in
  List.iter
    (fun (_k, st) ->
      Crashsim.materialize ~dir:enum_dir st;
      match cfg.kind with
      | Journal_path -> journal_check_state ~dir:enum_dir ~t
      | Checkpoint_path -> ckpt_check_state ~dir:enum_dir ~t
      | Export_path -> export_check_state ~dir:enum_dir ~versions ~t)
    states;
  (* The post-return guarantee: what the writer promised must be in
     the durable-min state of the complete trace — this is exactly the
     assertion the missing directory fsync used to fail. *)
  Crashsim.materialize ~dir:enum_dir (Crashsim.final_durable trace);
  (match cfg.kind with
  | Journal_path ->
      let final = Journal.cells (Journal.load ~path:(journal_file enum_dir) ()) in
      if not (List.for_all (fun k -> List.mem k final) journal_cells) then
        t.t_enum_violations <- t.t_enum_violations + 1
  | Checkpoint_path -> (
      match Checkpoint.read ~path:(ckpt_file enum_dir) with
      | Ok st when st = ckpt_version (ckpt_versions - 1) -> ()
      | _ -> t.t_enum_violations <- t.t_enum_violations + 1)
  | Export_path ->
      if read_file_opt (export_file enum_dir) <> Some (List.nth versions 1) then
        t.t_enum_violations <- t.t_enum_violations + 1);
  let clean_bytes =
    let artefact =
      match cfg.kind with
      | Journal_path -> journal_file trace_dir
      | Checkpoint_path -> ckpt_file trace_dir
      | Export_path -> export_file trace_dir
    in
    Option.value ~default:"" (read_file_opt artefact)
  in
  let torn_dir = Filename.concat cfg.scratch "torn" in
  synthetic_torn ~kind:cfg.kind ~dir:torn_dir ~t clean_bytes;
  let synthetic =
    match cfg.kind with Journal_path -> 3 | Checkpoint_path -> 2 | Export_path -> 0
  in

  (* Phase 2: live faulted runs. *)
  let p_crash = Prng.split (Prng.create cfg.seed) ("torture-" ^ kind_name cfg.kind) in
  let stats = ref { Faultio.ops = 0; transients = 0; enospc = 0; eio = 0; torn = 0; fsync_dropped = 0; crashes = 0 } in
  for r = 0 to cfg.runs - 1 do
    let run_dir = Filename.concat cfg.scratch (Printf.sprintf "run%02d" r) in
    fresh_dir run_dir;
    let crash_op = 2 + Prng.int p_crash (max 1 (List.length trace)) in
    let plan = live_plan ~dose:cfg.dose ~crash_op in
    let fio = Faultio.make ~root:run_dir ~seed:(cfg.seed + (977 * r)) plan in
    let _converged =
      match cfg.kind with
      | Journal_path -> journal_run ~fio ~dir:run_dir ~t
      | Checkpoint_path -> ckpt_run ~fio ~dir:run_dir ~t
      | Export_path -> export_run ~fio ~dir:run_dir ~versions ~t
    in
    let s = Faultio.stats fio in
    stats :=
      {
        Faultio.ops = !stats.Faultio.ops + s.Faultio.ops;
        transients = !stats.Faultio.transients + s.Faultio.transients;
        enospc = !stats.Faultio.enospc + s.Faultio.enospc;
        eio = !stats.Faultio.eio + s.Faultio.eio;
        torn = !stats.Faultio.torn + s.Faultio.torn;
        fsync_dropped = !stats.Faultio.fsync_dropped + s.Faultio.fsync_dropped;
        crashes = !stats.Faultio.crashes + s.Faultio.crashes;
      }
  done;
  let s = !stats in
  {
    kind = kind_name cfg.kind;
    dose = cfg.dose;
    trace_ops = List.length trace;
    crash_points = Crashsim.crash_points trace;
    crash_states = List.length states + synthetic;
    enum_violations = t.t_enum_violations;
    torn_refused = t.t_torn_refused;
    live_runs = cfg.runs;
    live_ok = t.t_ok;
    recovery_ok =
      (if cfg.runs = 0 then 1.0 else float_of_int t.t_ok /. float_of_int cfg.runs);
    crashes = s.Faultio.crashes;
    transients = s.Faultio.transients;
    enospc = s.Faultio.enospc;
    eio = s.Faultio.eio;
    torn_writes = s.Faultio.torn;
    fsync_dropped = s.Faultio.fsync_dropped;
    deferred_persists = t.t_deferred;
    cells_lost = t.t_cells_lost;
    double_runs = t.t_double_runs;
    litter = t.t_litter;
    litter_after = t.t_litter_after;
  }

let violations r =
  r.enum_violations + r.cells_lost + r.double_runs + r.litter_after
  + (r.live_runs - r.live_ok)
