(* Host-I/O fault plans.

   Same discipline as lib/fault/plan.ml, one layer down: typed actions,
   a line-oriented text format, presets, and a dose knob — but the
   events being perturbed are host I/O operations (open / write /
   fsync / rename / ...) rather than simulated syscalls.  Keeping the
   two languages twins means a torture run is described, replayed and
   scaled exactly like a kfault run. *)

type action =
  | Transient of { rate : float; eintr_share : float }
  | Enospc_window of { from_op : int; until_op : int }
  | Hard_eio of { rate : float }
  | Torn_write of { rate : float; keep : float }
  | Fsync_drop of { rate : float }
  | Crash_at of { op : int }

type t = { name : string; actions : action list }

let empty = { name = "empty"; actions = [] }

(* --- dose scaling ----------------------------------------------------- *)

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let scale_action k = function
  | Transient { rate; eintr_share } ->
      Some (Transient { rate = clamp01 (rate *. k); eintr_share })
  | Enospc_window { from_op; until_op } ->
      (* The dose stretches how long the disk stays full, not when it
         fills: onset is workload phase, duration is severity. *)
      let len = float_of_int (until_op - from_op) *. k in
      let until_op = from_op + int_of_float (Float.max 0.0 len) in
      if until_op <= from_op then None else Some (Enospc_window { from_op; until_op })
  | Hard_eio { rate } -> Some (Hard_eio { rate = clamp01 (rate *. k) })
  | Torn_write { rate; keep } ->
      Some (Torn_write { rate = clamp01 (rate *. k); keep })
  | Fsync_drop { rate } -> Some (Fsync_drop { rate = clamp01 (rate *. k) })
  | Crash_at c -> if k <= 0.0 then None else Some (Crash_at c)

let scale k t =
  if k < 0.0 then invalid_arg "Durplan.scale: negative intensity";
  {
    name = Printf.sprintf "%s@%g" t.name k;
    (* Zero dose injects literally nothing. *)
    actions =
      (if k = 0.0 then [] else List.filter_map (scale_action k) t.actions);
  }

(* --- serialisation ---------------------------------------------------- *)

let action_to_string = function
  | Transient { rate; eintr_share } ->
      Printf.sprintf "transient rate=%g eintr-share=%g" rate eintr_share
  | Enospc_window { from_op; until_op } ->
      Printf.sprintf "enospc at=%d clear=%d" from_op until_op
  | Hard_eio { rate } -> Printf.sprintf "eio rate=%g" rate
  | Torn_write { rate; keep } ->
      Printf.sprintf "torn rate=%g keep=%g" rate keep
  | Fsync_drop { rate } -> Printf.sprintf "fsync-drop rate=%g" rate
  | Crash_at { op } -> Printf.sprintf "crash at-op=%d" op

let to_string t =
  String.concat "\n"
    (Printf.sprintf "name %s" t.name :: List.map action_to_string t.actions)
  ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_kv word =
  match String.index_opt word '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" word)
  | Some i ->
      Ok
        ( String.sub word 0 i,
          String.sub word (i + 1) (String.length word - i - 1) )

let parse_float name v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" name v)

let parse_int name v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" name v)

let ( let* ) = Result.bind

let kvs_of words =
  List.fold_left
    (fun acc w ->
      let* acc = acc in
      let* kv = parse_kv w in
      Ok (kv :: acc))
    (Ok []) words
  |> Result.map List.rev

let find_float kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %s=" key))
  | Some v -> parse_float key v

let find_int kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %s=" key))
  | Some v -> parse_int key v

let parse_action line =
  match split_words line with
  | [] -> Ok None
  | keyword :: rest -> (
      let* kvs = kvs_of rest in
      match keyword with
      | "transient" ->
          let* rate = find_float kvs "rate" ~default:None in
          let* eintr_share =
            find_float kvs "eintr-share" ~default:(Some 0.5)
          in
          Ok (Some (Transient { rate; eintr_share }))
      | "enospc" ->
          let* from_op = find_int kvs "at" ~default:None in
          let* until_op = find_int kvs "clear" ~default:None in
          if until_op <= from_op then
            Error "enospc: clear= must exceed at="
          else Ok (Some (Enospc_window { from_op; until_op }))
      | "eio" ->
          let* rate = find_float kvs "rate" ~default:None in
          Ok (Some (Hard_eio { rate }))
      | "torn" ->
          let* rate = find_float kvs "rate" ~default:None in
          let* keep = find_float kvs "keep" ~default:(Some 0.5) in
          Ok (Some (Torn_write { rate; keep = clamp01 keep }))
      | "fsync-drop" ->
          let* rate = find_float kvs "rate" ~default:None in
          Ok (Some (Fsync_drop { rate }))
      | "crash" ->
          let* op = find_int kvs "at-op" ~default:None in
          Ok (Some (Crash_at { op }))
      | other -> Error (Printf.sprintf "unknown I/O fault action %S" other))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go name actions = function
    | [] -> Ok { name; actions = List.rev actions }
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go name actions rest
        else
          match split_words line with
          | "name" :: n :: _ -> go n actions rest
          | _ -> (
              match parse_action line with
              | Error e -> Error (Printf.sprintf "%S: %s" line e)
              | Ok None -> go name actions rest
              | Ok (Some a) -> go name (a :: actions) rest))
  in
  go "unnamed" [] lines

(* --- presets ----------------------------------------------------------

   Rates are per-op, sized for torture workloads of a few hundred ops
   per run: at dose 1 a run sees a handful of transients, roughly one
   hard fault, and one mid-run ENOSPC episode — enough to exercise
   every recovery path without making progress improbable. *)

let transient_preset =
  {
    name = "io-transient";
    actions = [ Transient { rate = 0.04; eintr_share = 0.5 } ];
  }

let enospc_preset =
  {
    name = "io-enospc";
    actions = [ Enospc_window { from_op = 40; until_op = 80 } ];
  }

let torn_preset =
  {
    name = "io-torn";
    actions =
      [
        Torn_write { rate = 0.02; keep = 0.5 };
        Fsync_drop { rate = 0.03 };
      ];
  }

let mixed_preset =
  {
    name = "io-mixed";
    actions =
      transient_preset.actions @ enospc_preset.actions
      @ torn_preset.actions
      @ [ Hard_eio { rate = 0.002 } ];
  }

let crashy_preset =
  {
    name = "io-crashy";
    actions = mixed_preset.actions @ [ Crash_at { op = 25 } ];
  }

let presets =
  [
    ("io-transient", transient_preset);
    ("io-enospc", enospc_preset);
    ("io-torn", torn_preset);
    ("io-mixed", { mixed_preset with name = "io-mixed" });
    ("io-crashy", { crashy_preset with name = "io-crashy" });
  ]

let preset name = List.assoc_opt name presets
