(** Crash-consistency torture cells for the durable writer paths.

    One cell tortures one writer path — the resumable sweep journal,
    the superstep checkpoint, or the atomic CSV export — at one fault
    dose, in two phases:

    {b Enumeration} (clean trace): the writer's op trace is recorded
    and every {!Crashsim} crash state is materialised into a scratch
    directory; recovery is re-run from each and its invariants
    asserted — journal resume never double-runs or loses a recorded
    cell, a checkpoint loads as old or new (torn and corrupt refused),
    exports are never partial, no [*.tmp.*] litter survives.  Synthetic
    torn files (truncated mid-line / mid-payload) are thrown in to
    prove the checksum refusal paths fire.

    {b Live runs}: the same workload repeated under a seed-scaled
    [io-mixed] {!Durplan} plus a per-run crash-at-op, with recovery
    (sweep litter, reload, recompute what is missing, drain deferred
    journal persists) after every simulated death, until the workload's
    final state is byte-exact.  Fault counts come from the cell's own
    {!Faultio} injector, so they are deterministic and job-count
    independent. *)

type kind = Journal_path | Checkpoint_path | Export_path

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type config = {
  kind : kind;
  dose : float;  (** 0 = fault-free control *)
  runs : int;  (** live faulted runs *)
  seed : int;
  scratch : string;  (** private scratch directory for this cell *)
}

type result = {
  kind : string;
  dose : float;
  trace_ops : int;  (** ops in the clean writer trace *)
  crash_points : int;
  crash_states : int;  (** distinct states enumerated (incl. synthetic) *)
  enum_violations : int;  (** must be 0 *)
  torn_refused : int;  (** torn/corrupt files refused by checksums *)
  live_runs : int;
  live_ok : int;  (** runs fully recovered, byte-exact *)
  recovery_ok : float;  (** live_ok / live_runs; 1.0 required *)
  crashes : int;
  transients : int;
  enospc : int;
  eio : int;
  torn_writes : int;
  fsync_dropped : int;
  deferred_persists : int;  (** journal persists deferred by ENOSPC *)
  cells_lost : int;  (** journal cells lost across all runs; must be 0 *)
  double_runs : int;  (** recorded cells re-executed; must be 0 *)
  litter : int;  (** temp files found (and swept) during recovery *)
  litter_after : int;  (** temp files surviving recovery; must be 0 *)
}

val run : config -> result

val violations : result -> int
(** [enum_violations + cells_lost + double_runs + litter_after] plus
    one per unrecovered live run — the cell's gate; 0 means every
    invariant held at every crash point. *)
