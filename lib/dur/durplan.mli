(** Host-I/O fault plans, in the kfault plan-language style.

    A plan is a named list of typed actions over the host I/O op
    stream ({!Ksurf_util.Iohook}): transient errno rates, an [ENOSPC]
    onset/clear window, hard [EIO], torn writes, silently-dropped
    fsyncs, and crash-at-op-k.  Plans serialise to the same
    line-oriented [keyword key=value] text format as
    {!Ksurf_fault.Plan}, scale with a dose knob, and compile (with a
    seed) into a deterministic {!Faultio} handler. *)

type action =
  | Transient of { rate : float; eintr_share : float }
      (** each op fails with [EINTR]/[EAGAIN] at [rate]; [eintr_share]
          of those are [EINTR], the rest [EAGAIN].  Absorbed by
          Fileio's bounded retry. *)
  | Enospc_window of { from_op : int; until_op : int }
      (** every space-consuming op (open/write/rename/mkdir) in
          [[from_op, until_op)] fails with [ENOSPC]; the disk "clears"
          at [until_op]. *)
  | Hard_eio of { rate : float }  (** unretryable [EIO] at [rate] *)
  | Torn_write of { rate : float; keep : float }
      (** a write tears at [rate], keeping [keep] of its bytes, and
          the process dies — power cut mid-write *)
  | Fsync_drop of { rate : float }
      (** an fsync (file or directory) silently does nothing at
          [rate] — the lying-disk failure mode *)
  | Crash_at of { op : int }
      (** simulated process death at absolute op index [op] *)

type t = { name : string; actions : action list }

val empty : t

val scale : float -> t -> t
(** Dose knob, kfault semantics: rates multiply by [k] (clamped to
    [0,1]), the ENOSPC window stretches its length by [k], crash
    schedules apply verbatim for [k > 0] and are dropped at [k = 0] —
    and a zero dose injects literally nothing. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val pp : t Fmt.t

val presets : (string * t) list
val preset : string -> t option
