(** One KVM-style virtual machine.

    A VM owns a {e guest kernel instance} whose surface area is exactly
    the VM's resources — this is the mechanism by which VM boundaries
    shrink the kernel surface area without changing the workload.  The
    guest kernel runs its own background daemons over its (small)
    resources; syscall execution inside the VM pays the bounded
    virtualisation overheads of {!Virt_config}. *)

type shape = { vcpus : int; mem_mb : int }

type t

val boot :
  engine:Ksurf_sim.Engine.t ->
  ?host_block:Ksurf_sim.Resource.t ->
  ?kernel_config:Ksurf_kernel.Config.t ->
  ?virt:Virt_config.t ->
  id:int ->
  shape ->
  t
(** Boot the VM and its guest kernel (with background daemons).  By
    default the VM gets a private virtio disk (its own image file whose
    traffic is largely absorbed by the host page cache, as with the
    paper's per-VM virtio disks); pass [host_block] to make virtio
    requests queue directly on a shared host device instead. *)

val id : t -> int
val shape : t -> shape
val guest : t -> Ksurf_kernel.Instance.t
val virt : t -> Virt_config.t

val shutdown : t -> unit
(** Halt the guest kernel ({!Ksurf_kernel.Instance.halt}): its
    background daemons exit at their next wakeup, so a decommissioned
    VM stops generating events. *)

val syscall_overhead : t -> float
(** Sample this call's bounded virtualisation overhead (involuntary
    exits).  Deterministic stream per VM. *)

val exec_syscall :
  t -> core:int -> tenant:int -> key:int ->
  Ksurf_kernel.Ops.op list -> unit
(** Run an op program on the guest kernel from a vCPU, paying guest
    entry cost and virtualisation overhead.  [core] is the vCPU index
    (must be < vcpus). *)
