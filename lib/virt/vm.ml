module Engine = Ksurf_sim.Engine
module Instance = Ksurf_kernel.Instance
module Prng = Ksurf_util.Prng

type shape = { vcpus : int; mem_mb : int }

type t = {
  id : int;
  shape : shape;
  virt : Virt_config.t;
  guest : Instance.t;
  rng : Prng.t;
}

let boot ~engine ?host_block ?(kernel_config = Ksurf_kernel.Config.default)
    ?(virt = Virt_config.default) ~id shape =
  if shape.vcpus < 1 then invalid_arg "Vm.boot: vcpus must be >= 1";
  let guest_config = Virt_config.derive_kernel_config virt kernel_config in
  let guest =
    Ksurf_kernel.Kernel.boot ~engine ~config:guest_config ~id:(1000 + id)
      ~cores:shape.vcpus ~mem_mb:shape.mem_mb ?block_dev:host_block ()
  in
  let rng = Prng.split (Engine.rng engine) (Printf.sprintf "vm-%d" id) in
  { id; shape; virt; guest; rng }

let id t = t.id
let shape t = t.shape
let guest t = t.guest
let virt t = t.virt
let shutdown t = Instance.halt t.guest

let syscall_overhead t =
  (* Expected involuntary exits per call; fractional expectation realised
     as a Bernoulli draw so the overhead stays bounded per call. *)
  let v = t.virt in
  let whole = int_of_float v.Virt_config.exits_per_syscall in
  let frac = v.Virt_config.exits_per_syscall -. float_of_int whole in
  let exits = whole + if Prng.chance t.rng frac then 1 else 0 in
  let fast = float_of_int exits *. v.Virt_config.exit_cost in
  let slow =
    if exits > 0 && Prng.chance t.rng v.Virt_config.exit_slow_prob then
      Ksurf_util.Dist.sample v.Virt_config.exit_slow_cost t.rng
    else 0.0
  in
  fast +. slow

let exec_syscall t ~core ~tenant ~key ops =
  if core < 0 || core >= t.shape.vcpus then
    invalid_arg (Printf.sprintf "Vm.exec_syscall: vCPU %d out of range" core);
  let cfg = Instance.config t.guest in
  let ctx = { Instance.core; tenant; key; cgroup = None } in
  Instance.burn t.guest cfg.Ksurf_kernel.Config.syscall_entry_cost;
  let overhead = syscall_overhead t in
  if overhead > 0.0 then Engine.delay overhead;
  Instance.exec_program t.guest ctx ops
