(** Determinism checker.

    Runs the same scenario twice, folds both probe event streams
    through {!Ksurf_util.Stable_hash}, and reports the first divergent
    event.  The DES is supposed to be bit-for-bit deterministic — every
    number the repo publishes rests on it — so any divergence is an
    [Error] finding. *)

type event = { key : string; display : string }

val describe : Ksurf_sim.Engine.event_info -> event
(** [key] encodes the exact float bits so "close enough" never passes;
    [display] is the human-readable form used in reports. *)

type divergence = {
  index : int;  (** position in the event stream, 0-based *)
  first : string option;  (** event of the first run, if it had one *)
  second : string option;  (** event of the second run, if it had one *)
}

type result = {
  events_first : int;
  events_second : int;
  hash_first : int;
  hash_second : int;
  divergence : divergence option;
}

val deterministic : result -> bool

val check :
  run:(probe:(Ksurf_sim.Engine.event_info -> unit) -> unit) -> unit -> result
(** [run ~probe] must perform one complete scenario execution, feeding
    every engine event to [probe] (attach it via [Engine.add_probe] on
    every engine the scenario creates).  It is called exactly twice. *)

val to_findings : result -> Finding.t list
(** Empty when deterministic; otherwise a single [divergent-replay]
    error with the first divergent event as witness. *)
