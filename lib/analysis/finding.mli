(** A sanitizer finding: one defect (or suspected defect) in the
    simulated kernel's synchronization or the engine's bookkeeping,
    with enough witness context to act on it. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  check : string;  (** which analyzer produced it: lockdep, invariants, ... *)
  code : string;  (** stable machine-readable kind: lock-order-cycle, ... *)
  message : string;
  witness : string list;  (** trace excerpt: one line per witness event *)
}

val make :
  severity:severity ->
  check:string ->
  code:string ->
  message:string ->
  ?witness:string list ->
  unit ->
  t

val severity_name : severity -> string

val sort : t list -> t list
(** Stable report order: errors first, then by analyzer, code and
    message. *)

val errors : t list -> t list

val pp : Format.formatter -> t -> unit

val csv_header : string list

val csv_rows : t list -> string list list

val export_csv : path:string -> t list -> unit
