(* Stock scenarios for the sanitizer suite: small, fast configurations
   of the repo's three workload families, plus a deliberately broken
   [Inversion] scenario that self-tests the lockdep analyzer (and gives
   [ksurf_cli analyze] something to exit nonzero on).

   Every scenario calls [on_engine] on each engine it creates *before*
   running it, so callers can attach probes to the full event stream. *)

module Engine = Ksurf_sim.Engine
module Lock = Ksurf_sim.Lock
module Env = Ksurf_env.Env
module Partition = Ksurf_env.Partition
module Generator = Ksurf_syzgen.Generator
module Harness = Ksurf_varbench.Harness
module Apps = Ksurf_tailbench.Apps
module Runner = Ksurf_tailbench.Runner
module Cluster = Ksurf_cluster.Cluster

type t =
  | Varbench
  | Tailbench
  | Bsp
  | Inversion
  | Faulted_varbench
  | Faulted_tailbench

let all =
  [ Varbench; Tailbench; Bsp; Inversion; Faulted_varbench; Faulted_tailbench ]

let to_string = function
  | Varbench -> "varbench"
  | Tailbench -> "tailbench"
  | Bsp -> "bsp"
  | Inversion -> "inversion"
  | Faulted_varbench -> "faulted-varbench"
  | Faulted_tailbench -> "faulted-tailbench"

let of_string = function
  | "varbench" -> Some Varbench
  | "tailbench" -> Some Tailbench
  | "bsp" -> Some Bsp
  | "inversion" -> Some Inversion
  | "faulted-varbench" -> Some Faulted_varbench
  | "faulted-tailbench" -> Some Faulted_tailbench
  | _ -> None

(* Scenarios the sanitizers must pass on; [Inversion] is the negative
   control and is excluded on purpose.  The faulted scenarios run under
   an armed kfault plan: injections must stay deterministic and
   lockdep-clean too. *)
let stock = [ Varbench; Tailbench; Bsp; Faulted_varbench; Faulted_tailbench ]

let small_corpus ~seed =
  (Generator.run
     ~params:{ Generator.default_params with Generator.seed; target_programs = 8 }
     ())
    .Generator.corpus

let app () =
  match Apps.by_name "silo" with Some a -> a | None -> List.hd Apps.all

let run_varbench ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let env =
    Env.deploy ~engine Env.Native
      (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
  in
  let corpus = small_corpus ~seed in
  ignore
    (Harness.run ~env ~corpus
       ~params:{ Harness.iterations = 4; warmup_iterations = 1 }
       ())

let run_tailbench ~seed ~on_engine =
  let config =
    {
      Runner.default_config with
      Runner.requests = 250;
      seed;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
    }
  in
  ignore
    (Runner.run_single_node ~app:(app ()) ~kind:Env.Native ~contended:false
       ~config ~on_engine ())

let run_bsp ~seed ~on_engine =
  let config =
    {
      Cluster.default_config with
      Cluster.nodes_simulated = 1;
      sim_iterations_per_node = 6;
      warmup_iterations = 1;
      requests_per_iteration = 10;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
      seed;
    }
  in
  ignore
    (Cluster.run ~app:(app ()) ~kind:Env.Native ~contended:false ~config
       ~on_engine ())

(* AB in one process, BA in another, far enough apart in virtual time
   that the run completes — the cycle is only *potential*, which is
   exactly what lockdep exists to catch. *)
let run_inversion ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let a = Lock.create ~engine ~name:"inv.alpha" in
  let b = Lock.create ~engine ~name:"inv.beta" in
  Engine.spawn engine (fun () ->
      Lock.acquire a;
      Engine.delay 5.0;
      Lock.acquire b;
      Engine.delay 1.0;
      Lock.release b;
      Lock.release a);
  Engine.spawn ~at:20.0 engine (fun () ->
      Lock.acquire b;
      Engine.delay 5.0;
      Lock.acquire a;
      Engine.delay 1.0;
      Lock.release a;
      Lock.release b);
  Engine.run engine

(* Faulted variants: same workloads under an armed kfault plan.  The
   "crashy" preset exercises every injection mechanism including a rank
   crash, so these scenarios cover barrier departure (varbench) and
   crash/restart requeueing (tailbench) under the sanitizers. *)
let fault_plan () =
  match Ksurf_fault.Plan.preset "crashy" with
  | Some p -> p
  | None -> assert false

let run_faulted_varbench ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let env =
    Env.deploy ~engine Env.Native
      (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
  in
  let kf = Ksurf_fault.Kfault.arm ~env ~plan:(fault_plan ()) ~seed () in
  let corpus = small_corpus ~seed in
  ignore
    (Harness.run ~env ~corpus
       ~params:{ Harness.iterations = 4; warmup_iterations = 1 }
       ~straggler_timeout_ns:5e9 ());
  Ksurf_fault.Kfault.disarm kf

let run_faulted_tailbench ~seed ~on_engine =
  let config =
    {
      Runner.default_config with
      Runner.requests = 250;
      seed;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
    }
  in
  let kf = ref None in
  let on_env env =
    kf := Some (Ksurf_fault.Kfault.arm ~env ~plan:(fault_plan ()) ~seed ())
  in
  ignore
    (Runner.run_single_node ~app:(app ()) ~kind:Env.Native ~contended:false
       ~config ~request_timeout_ns:1e9 ~on_engine ~on_env ());
  Option.iter Ksurf_fault.Kfault.disarm !kf

let run t ~seed ~on_engine =
  match t with
  | Varbench -> run_varbench ~seed ~on_engine
  | Tailbench -> run_tailbench ~seed ~on_engine
  | Bsp -> run_bsp ~seed ~on_engine
  | Inversion -> run_inversion ~seed ~on_engine
  | Faulted_varbench -> run_faulted_varbench ~seed ~on_engine
  | Faulted_tailbench -> run_faulted_tailbench ~seed ~on_engine
