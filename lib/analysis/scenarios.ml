(* Stock scenarios for the sanitizer suite: small, fast configurations
   of the repo's three workload families, plus a deliberately broken
   [Inversion] scenario that self-tests the lockdep analyzer (and gives
   [ksurf_cli analyze] something to exit nonzero on).

   Every scenario calls [on_engine] on each engine it creates *before*
   running it, so callers can attach probes to the full event stream. *)

module Engine = Ksurf_sim.Engine
module Lock = Ksurf_sim.Lock
module Env = Ksurf_env.Env
module Partition = Ksurf_env.Partition
module Generator = Ksurf_syzgen.Generator
module Harness = Ksurf_varbench.Harness
module Apps = Ksurf_tailbench.Apps
module Runner = Ksurf_tailbench.Runner
module Cluster = Ksurf_cluster.Cluster

type t =
  | Varbench
  | Tailbench
  | Bsp
  | Inversion
  | Faulted_varbench
  | Faulted_tailbench
  | Specialized_varbench
  | Recovered_bsp
  | Parallel_sweep
  | Tenancy
  | Adaptive_drift

let all =
  [
    Varbench;
    Tailbench;
    Bsp;
    Inversion;
    Faulted_varbench;
    Faulted_tailbench;
    Specialized_varbench;
    Recovered_bsp;
    Parallel_sweep;
    Tenancy;
    Adaptive_drift;
  ]

let to_string = function
  | Varbench -> "varbench"
  | Tailbench -> "tailbench"
  | Bsp -> "bsp"
  | Inversion -> "inversion"
  | Faulted_varbench -> "faulted-varbench"
  | Faulted_tailbench -> "faulted-tailbench"
  | Specialized_varbench -> "specialized-varbench"
  | Recovered_bsp -> "recovered-bsp"
  | Parallel_sweep -> "parallel-sweep"
  | Tenancy -> "tenancy"
  | Adaptive_drift -> "adaptive-drift"

let of_string = function
  | "varbench" -> Some Varbench
  | "tailbench" -> Some Tailbench
  | "bsp" -> Some Bsp
  | "inversion" -> Some Inversion
  | "faulted-varbench" -> Some Faulted_varbench
  | "faulted-tailbench" -> Some Faulted_tailbench
  | "specialized-varbench" -> Some Specialized_varbench
  | "recovered-bsp" -> Some Recovered_bsp
  | "parallel-sweep" -> Some Parallel_sweep
  | "tenancy" -> Some Tenancy
  | "adaptive-drift" -> Some Adaptive_drift
  | _ -> None

(* Scenarios the sanitizers must pass on; [Inversion] is the negative
   control and is excluded on purpose.  The faulted scenarios run under
   an armed kfault plan: injections must stay deterministic and
   lockdep-clean too. *)
let stock =
  [
    Varbench;
    Tailbench;
    Bsp;
    Faulted_varbench;
    Faulted_tailbench;
    Specialized_varbench;
    Recovered_bsp;
    Parallel_sweep;
    Tenancy;
    Adaptive_drift;
  ]

let small_corpus ~seed =
  (Generator.run
     ~params:{ Generator.default_params with Generator.seed; target_programs = 8 }
     ())
    .Generator.corpus

let app () =
  match Apps.by_name "silo" with Some a -> a | None -> List.hd Apps.all

let run_varbench ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let env =
    Env.deploy ~engine Env.Native
      (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
  in
  let corpus = small_corpus ~seed in
  ignore
    (Harness.run ~env ~corpus
       ~params:{ Harness.iterations = 4; warmup_iterations = 1 }
       ())

let run_tailbench ~seed ~on_engine =
  let config =
    {
      Runner.default_config with
      Runner.requests = 250;
      seed;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
    }
  in
  ignore
    (Runner.run_single_node ~app:(app ()) ~kind:Env.Native ~contended:false
       ~config ~on_engine ())

let run_bsp ~seed ~on_engine =
  let config =
    {
      Cluster.default_config with
      Cluster.nodes_simulated = 1;
      sim_iterations_per_node = 6;
      warmup_iterations = 1;
      requests_per_iteration = 10;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
      seed;
    }
  in
  ignore
    (Cluster.run ~app:(app ()) ~kind:Env.Native ~contended:false ~config
       ~on_engine ())

(* AB in one process, BA in another, far enough apart in virtual time
   that the run completes — the cycle is only *potential*, which is
   exactly what lockdep exists to catch. *)
let run_inversion ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let a = Lock.create ~engine ~name:"inv.alpha" in
  let b = Lock.create ~engine ~name:"inv.beta" in
  Engine.spawn engine (fun () ->
      Lock.acquire a;
      Engine.delay 5.0;
      Lock.acquire b;
      Engine.delay 1.0;
      Lock.release b;
      Lock.release a);
  Engine.spawn ~at:20.0 engine (fun () ->
      Lock.acquire b;
      Engine.delay 5.0;
      Lock.acquire a;
      Engine.delay 1.0;
      Lock.release a;
      Lock.release b);
  Engine.run engine

(* Faulted variants: same workloads under an armed kfault plan.  The
   "crashy" preset exercises every injection mechanism including a rank
   crash, so these scenarios cover barrier departure (varbench) and
   crash/restart requeueing (tailbench) under the sanitizers. *)
let fault_plan () =
  match Ksurf_fault.Plan.preset "crashy" with
  | Some p -> p
  | None -> assert false

let run_faulted_varbench ~seed ~on_engine =
  let engine = Engine.create ~seed () in
  on_engine engine;
  let env =
    Env.deploy ~engine Env.Native
      (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
  in
  let kf = Ksurf_fault.Kfault.arm ~env ~plan:(fault_plan ()) ~seed () in
  let corpus = small_corpus ~seed in
  ignore
    (Harness.run ~env ~corpus
       ~params:{ Harness.iterations = 4; warmup_iterations = 1 }
       ~straggler_timeout_ns:5e9 ());
  Ksurf_fault.Kfault.disarm kf

let run_faulted_tailbench ~seed ~on_engine =
  let config =
    {
      Runner.default_config with
      Runner.requests = 250;
      seed;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
    }
  in
  let kf = ref None in
  let on_env env =
    kf := Some (Ksurf_fault.Kfault.arm ~env ~plan:(fault_plan ()) ~seed ())
  in
  ignore
    (Runner.run_single_node ~app:(app ()) ~kind:Env.Native ~contended:false
       ~config ~request_timeout_ns:1e9 ~on_engine ~on_env ());
  Option.iter Ksurf_fault.Kfault.disarm !kf

(* Specialized variant: varbench on an fs-restricted corpus over a
   multikernel deployment of kspec-pruned kernels, with the Enforce
   allowlist installed on every rank.  Per-unit kernel boot, daemon
   gating and the per-call policy check must stay deterministic and
   lockdep-clean, and (the allowlist matching the restricted corpus
   exactly) produce zero denials. *)
let run_specialized_varbench ~seed ~on_engine =
  let module Profile = Ksurf_spec.Profile in
  let module Specializer = Ksurf_spec.Specializer in
  let module Category = Ksurf_kernel.Category in
  let corpus =
    let full = small_corpus ~seed in
    match Profile.restrict full ~keep:[ Category.File_io; Category.Fs_mgmt ] with
    | Some c -> c
    | None -> full
  in
  let spec =
    Specializer.compile (Profile.of_corpus ~name:"specialized-varbench" corpus)
  in
  let engine = Engine.create ~seed () in
  on_engine engine;
  let env =
    Env.deploy ~engine
      ~kernel_config:(Specializer.kernel_config spec)
      Env.Multikernel
      (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
  in
  Specializer.install_all env spec;
  ignore
    (Harness.run ~env ~corpus
       ~params:{ Harness.iterations = 4; warmup_iterations = 1 }
       ())

(* Recovered variant: the BSP synthesis under elastic supervision with
   the crashy plan plus random crashes, Readmit policy.  Every
   superstep engine carries heartbeats, detector verdicts and recovery
   actions; the invariant analyzer's rank-transition checks then assert
   the failover choreography itself — legal detector edges only, no
   discontinuous states, and each Suspect -> Dead -> rejoin edge at
   most once per incident. *)
let run_recovered_bsp ~seed ~on_engine =
  let module Supervisor = Ksurf_recov.Supervisor in
  let config =
    {
      Cluster.default_config with
      Cluster.nodes_simulated = 1;
      iterations = 8;
      sim_iterations_per_node = 6;
      warmup_iterations = 1;
      requests_per_iteration = 10;
      units = 2;
      unit_cores = 4;
      unit_mem_mb = 2048;
      seed;
    }
  in
  let recovery =
    {
      Supervisor.default_config with
      Supervisor.policy = Supervisor.Readmit;
      crash_rate = 0.01;
    }
  in
  ignore
    (Cluster.run ~app:(app ()) ~kind:Env.Native ~contended:false ~config
       ~on_engine ~recovery ~plan:(fault_plan ()) ())

(* Parallel-sweep variant: a mini sweep of independent varbench cells
   fanned across a domain pool, every completed cell funnelled through
   one mutex-guarded journal — the single-writer discipline the kpar
   sweeps rely on.  Sanitizer probes are not thread-safe, so the
   parallel phase runs unobserved; the journal is then reloaded and
   verified (every cell recorded exactly once, batched persists
   included), and one cell re-runs sequentially under [on_engine] so
   the sanitizers still see a full event stream.  Any journal
   discrepancy raises, which [ksurf_cli analyze] reports as a failed
   scenario. *)
let run_parallel_sweep ~seed ~on_engine =
  let module Pool = Ksurf_par.Pool in
  let module Journal = Ksurf_recov.Journal in
  let cell ~observe i =
    let cell_seed = seed + (31 * i) in
    let engine = Engine.create ~seed:cell_seed () in
    if observe then on_engine engine;
    let env =
      Env.deploy ~engine Env.Native
        (Partition.equal_split ~units:2 ~total_cores:8 ~total_mem_mb:8192)
    in
    let corpus = small_corpus ~seed:cell_seed in
    ignore
      (Harness.run ~env ~corpus
         ~params:{ Harness.iterations = 2; warmup_iterations = 1 }
         ())
  in
  let key i = Printf.sprintf "cell:%d" i in
  let path = Filename.temp_file "ksurf-parsweep" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let journal = Journal.load ~flush_every:2 ~path () in
      let cells = List.init 6 Fun.id in
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map ~pool
               (fun i ->
                 cell ~observe:false i;
                 Journal.record journal (key i))
               cells));
      Journal.flush journal;
      let reloaded = Journal.load ~path () in
      List.iter
        (fun i ->
          if not (Journal.mem reloaded (key i)) then
            failwith
              (Printf.sprintf
                 "parallel-sweep: cell %d missing from the journal" i))
        cells;
      if List.length (Journal.cells reloaded) <> List.length cells then
        failwith "parallel-sweep: journal has duplicate or spurious cells");
  cell ~observe:true 0

(* Tenancy variant: a small churny adaptive fleet.  Tenant admission
   and departure drive cgroup create/destroy storms through the shared
   accounting locks (Cgroup_css -> Tasklist nesting), autoscaling reads
   epoch quantiles, and adaptive placement may migrate tenants between
   substrates mid-run — all of which must stay deterministic and
   lockdep-clean under the sanitizers. *)
let run_tenancy ~seed ~on_engine =
  let module Fleet = Ksurf_tenant.Fleet in
  let module Policy = Ksurf_tenant.Policy in
  ignore
    (Fleet.run ~on_engine
       {
         Fleet.default_config with
         Fleet.tenants = 16;
         churn_per_day = 16.0;
         policy = Policy.Adaptive;
         seed;
         host_cores = 16;
         day_ns = 4e8;
         mean_rate_per_s = 40.0;
         epoch_ns = 5e7;
       })

(* Adaptive-drift variant: a small kadapt driftbench cell — per-rank
   controllers audit, promote to Enforce, absorb a mid-run workload
   drift (demote, re-learn, re-promote), all policy hot-swaps flowing
   through [Env.swap_policy]'s probe-visible transitions.  The
   invariant analyzer's policy-protocol checks then assert the
   controller choreography itself: legal audit/enforce edges only, no
   discontinuous policy states, each swap ordinal used once. *)
let run_adaptive_drift ~seed ~on_engine =
  let module Driftbench = Ksurf_adapt.Driftbench in
  ignore
    (Driftbench.run ~on_engine
       {
         Driftbench.default_config with
         Driftbench.policy = Driftbench.Adaptive;
         dose = 2.0;
         epochs = 24;
         programs_per_epoch = 12;
         corpus_programs = 16;
         drift_at_ns = 8_000_000.0;
         seed;
       })

let run t ~seed ~on_engine =
  match t with
  | Varbench -> run_varbench ~seed ~on_engine
  | Tailbench -> run_tailbench ~seed ~on_engine
  | Bsp -> run_bsp ~seed ~on_engine
  | Inversion -> run_inversion ~seed ~on_engine
  | Faulted_varbench -> run_faulted_varbench ~seed ~on_engine
  | Faulted_tailbench -> run_faulted_tailbench ~seed ~on_engine
  | Specialized_varbench -> run_specialized_varbench ~seed ~on_engine
  | Recovered_bsp -> run_recovered_bsp ~seed ~on_engine
  | Parallel_sweep -> run_parallel_sweep ~seed ~on_engine
  | Tenancy -> run_tenancy ~seed ~on_engine
  | Adaptive_drift -> run_adaptive_drift ~seed ~on_engine
