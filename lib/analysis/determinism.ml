(* Determinism checker: run the same scenario twice with the same seed,
   fold both probe event streams through {!Ksurf_util.Stable_hash}, and
   report the first divergent event.  The DES is supposed to be
   bit-for-bit deterministic — every number the repo publishes rests on
   it — so any divergence is an Error. *)

module Engine = Ksurf_sim.Engine
module Stable_hash = Ksurf_util.Stable_hash

type event = { key : string; display : string }

(* [key] uses the exact float bits so "close enough" never passes;
   [display] is the human-readable form used in the report. *)
let describe (info : Engine.event_info) =
  let bits = Int64.bits_of_float in
  match info with
  | Engine.Scheduled { now; at; pid } ->
      {
        key = Printf.sprintf "S:%Lx:%Lx:%d" (bits now) (bits at) pid;
        display = Printf.sprintf "t=%g pid=%d schedule(at=%g)" now pid at;
      }
  | Engine.Executed { now; pid } ->
      {
        key = Printf.sprintf "E:%Lx:%d" (bits now) pid;
        display = Printf.sprintf "t=%g pid=%d execute" now pid;
      }
  | Engine.Suspended { now; pid; token } ->
      {
        key = Printf.sprintf "P:%Lx:%d:%d" (bits now) pid token;
        display = Printf.sprintf "t=%g pid=%d suspend(token=%d)" now pid token;
      }
  | Engine.Woken { now; pid; token } ->
      {
        key = Printf.sprintf "W:%Lx:%d:%d" (bits now) pid token;
        display = Printf.sprintf "t=%g pid=%d wake(token=%d)" now pid token;
      }
  | Engine.Sync { now; pid; name; op } ->
      let op_label =
        match op with
        | Engine.Acquire { contended } ->
            Printf.sprintf "acquire(contended=%b)" contended
        | Engine.Release -> "release"
        | Engine.Read_acquire { contended } ->
            Printf.sprintf "read-acquire(contended=%b)" contended
        | Engine.Read_release -> "read-release"
        | Engine.Write_acquire { contended } ->
            Printf.sprintf "write-acquire(contended=%b)" contended
        | Engine.Write_release -> "write-release"
        | Engine.Barrier_arrive { generation; arrived; parties } ->
            Printf.sprintf "barrier-arrive(gen=%d,%d/%d)" generation arrived
              parties
        | Engine.Barrier_release { generation } ->
            Printf.sprintf "barrier-release(gen=%d)" generation
        | Engine.Barrier_depart { generation; parties } ->
            Printf.sprintf "barrier-depart(gen=%d,parties=%d)" generation
              parties
      in
      {
        key = Printf.sprintf "Y:%Lx:%d:%s:%s" (bits now) pid name op_label;
        display = Printf.sprintf "t=%g pid=%d %s %s" now pid name op_label;
      }
  | Engine.Injected { now; pid; fault; magnitude } ->
      {
        key =
          Printf.sprintf "I:%Lx:%d:%s:%Lx" (bits now) pid fault
            (bits magnitude);
        display =
          Printf.sprintf "t=%g pid=%d inject %s(%g)" now pid fault magnitude;
      }
  | Engine.Denied { now; pid; syscall; enforced } ->
      {
        key = Printf.sprintf "D:%Lx:%d:%s:%b" (bits now) pid syscall enforced;
        display =
          Printf.sprintf "t=%g pid=%d deny %s(enforced=%b)" now pid syscall
            enforced;
      }
  | Engine.Rank_transition { now; pid; rank; from_state; to_state; incident } ->
      {
        key =
          Printf.sprintf "R:%Lx:%d:%d:%s:%s:%d" (bits now) pid rank from_state
            to_state incident;
        display =
          Printf.sprintf "t=%g pid=%d rank %d %s->%s (incident %d)" now pid
            rank from_state to_state incident;
      }

type divergence = {
  index : int;  (** position in the event stream, 0-based *)
  first : string option;  (** event of the first run, if it had one *)
  second : string option;  (** event of the second run, if it had one *)
}

type result = {
  events_first : int;
  events_second : int;
  hash_first : int;
  hash_second : int;
  divergence : divergence option;
}

let deterministic r = r.divergence = None && r.hash_first = r.hash_second

(* [run ~probe] must perform one complete scenario run, feeding every
   engine event to [probe] (attach it via [Engine.add_probe] on every
   engine the scenario creates). *)
let check ~(run : probe:(Engine.event_info -> unit) -> unit) () =
  let seed_hash = Stable_hash.string "ksan-determinism" in
  let first_events = Queue.create () in
  let hash_first = ref seed_hash in
  run ~probe:(fun info ->
      let e = describe info in
      hash_first := Stable_hash.combine !hash_first (Stable_hash.string e.key);
      Queue.push e first_events);
  let events_first = Queue.length first_events in
  let hash_second = ref seed_hash in
  let events_second = ref 0 in
  let divergence = ref None in
  run ~probe:(fun info ->
      let e = describe info in
      let index = !events_second in
      incr events_second;
      hash_second := Stable_hash.combine !hash_second (Stable_hash.string e.key);
      match Queue.take_opt first_events with
      | Some a when a.key = e.key -> ()
      | Some a ->
          if !divergence = None then
            divergence :=
              Some { index; first = Some a.display; second = Some e.display }
      | None ->
          if !divergence = None then
            divergence := Some { index; first = None; second = Some e.display });
  (if !divergence = None then
     match Queue.take_opt first_events with
     | Some a ->
         divergence :=
           Some { index = !events_second; first = Some a.display; second = None }
     | None -> ());
  {
    events_first;
    events_second = !events_second;
    hash_first = !hash_first;
    hash_second = !hash_second;
    divergence = !divergence;
  }

let to_findings r =
  if deterministic r then []
  else
    let witness =
      match r.divergence with
      | None -> []
      | Some d ->
          [
            Printf.sprintf "first divergent event at index %d" d.index;
            Printf.sprintf "  run 1: %s"
              (Option.value ~default:"<stream ended>" d.first);
            Printf.sprintf "  run 2: %s"
              (Option.value ~default:"<stream ended>" d.second);
          ]
    in
    [
      Finding.make ~severity:Finding.Error ~check:"determinism"
        ~code:"divergent-replay"
        ~message:
          (Printf.sprintf
             "two runs with the same seed diverged (%d vs %d events, hash \
              %x vs %x)"
             r.events_first r.events_second r.hash_first r.hash_second)
        ~witness ()
    ]
