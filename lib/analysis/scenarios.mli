(** Stock scenarios for the sanitizer suite: small, fast configurations
    of the repo's three workload families, plus a deliberately broken
    [Inversion] scenario (an AB/BA lock-order inversion at disjoint
    virtual times) that self-tests the lockdep analyzer, plus faulted
    variants that rerun varbench/tailbench under an armed kfault
    "crashy" plan — injections must stay deterministic and
    lockdep-clean — plus a [Specialized_varbench] variant running an
    fs-restricted corpus under a kspec-pruned kernel with the Enforce
    allowlist installed (daemon gating and the per-call policy check
    under the sanitizers), plus a [Recovered_bsp] variant running the
    supervised BSP synthesis under the crashy plan with the Readmit
    policy — the invariant analyzer's rank-transition checks assert the
    failover choreography (legal detector edges only, each
    Suspect -> Dead -> rejoin at most once per incident) — plus a
    [Parallel_sweep] variant fanning independent varbench cells across
    a {!Ksurf_par.Pool} with every completed cell funnelled through one
    mutex-guarded {!Ksurf_recov.Journal} (the parallel phase runs
    unobserved because probes are not thread-safe; the journal is
    verified on reload and one cell re-runs sequentially under
    [on_engine] for the sanitizers) — plus a [Tenancy] variant running
    a small churny adaptive {!Ksurf_tenant.Fleet}: lifecycle storms
    through the shared cgroup accounting locks, epoch-driven
    autoscaling and adaptive migration, all under the sanitizers —
    plus an [Adaptive_drift] variant running a small
    {!Ksurf_adapt.Driftbench} cell: per-rank controllers audit,
    promote, absorb a mid-run workload drift and re-specialize, with
    every policy hot-swap probe-visible so the invariant analyzer can
    assert the controller choreography (legal audit/enforce edges
    only, each swap ordinal used once). *)

type t =
  | Varbench
  | Tailbench
  | Bsp
  | Inversion
  | Faulted_varbench
  | Faulted_tailbench
  | Specialized_varbench
  | Recovered_bsp
  | Parallel_sweep
  | Tenancy
  | Adaptive_drift

val all : t list

val stock : t list
(** Scenarios the sanitizers must pass on; [Inversion] is the negative
    control and is excluded on purpose. *)

val to_string : t -> string
val of_string : string -> t option

val run : t -> seed:int -> on_engine:(Ksurf_sim.Engine.t -> unit) -> unit
(** Execute one scenario run.  [on_engine] is called on every engine
    the scenario creates, before anything is spawned on it — attach
    probes there.  Deterministic for a given seed. *)
