(** Lockdep-style lock-order validator.

    Locks are grouped into {e classes} — the stripe index and the
    kernel-instance prefix of an instance name are stripped, so
    [k0.inode[3]] and [k2.inode[7]] are both class [inode] — and every
    "A held while acquiring B" observation adds a class edge with the
    acquisition context that first created it.  A cycle in the class
    graph is a potential deadlock even if the observed run got lucky
    with timing.  Instance-level violations (double acquire, release of
    a lock not held, locks still held at drain) are reported directly.

    Feed events with [Engine.add_probe engine (Lockdep.on_event state)];
    acquire events arrive at {e intent} time, so an acquisition that
    deadlocks still contributes its edge. *)

type t

val create : unit -> t

val class_of_instance : string -> string
(** ["k3.inode[7]"] is class ["inode"]: the kernel-instance prefix
    ([k<digits>.]) and the stripe suffix ([[<i>]]) are stripped. *)

val on_event : t -> Ksurf_sim.Engine.event_info -> unit
(** Probe entry point; ignores non-[Sync] events. *)

val strongly_connected_components :
  nodes:string list -> succs:(string -> string list) -> string list list
(** Tarjan SCC over an arbitrary class graph, in deterministic node
    order.  Shared with the static lock-order graph (lib/staticcheck),
    which must agree with the dynamic validator on what counts as a
    potential-deadlock cycle. *)

val sync_events : t -> int
(** Lock/rwlock/barrier events seen so far. *)

val edge_count : t -> int
(** Distinct class-order edges observed. *)

val finish : ?drained:bool -> t -> Finding.t list
(** All findings: immediate violations in event order, then
    held-at-drain leaks (only when [drained], default [true] — a run
    stopped early by a predicate legitimately leaves locks held), then
    one potential-deadlock finding per cyclic class SCC.  Deterministic
    for a given event stream. *)
