(* Lockdep-style lock-order validator.

   Mirrors the kernel's lockdep at the level this simulator needs:
   locks are grouped into *classes* (the 16 stripes of [k0.inode[i]]
   are one class, and the same class across kernel instances), and
   every "A held while acquiring B" observation adds a class edge
   A -> B with the acquisition context that created it.  A cycle in
   the class graph is a potential deadlock even if this particular run
   got lucky with timing.  Instance-level checks (double acquire,
   release of a lock not held, locks still held when the engine
   drains) are reported directly.

   Events arrive through the [Ksurf_sim.Engine] probe API at *intent*
   time — before the acquiring process blocks — so an acquisition that
   deadlocks still contributes its edge. *)

module Engine = Ksurf_sim.Engine

type mode = Mutex | Read | Write

let mode_label = function Mutex -> "" | Read -> " (read)" | Write -> " (write)"

(* "k3.inode[7]" -> class "inode": strip the kernel-instance prefix and
   the stripe index so striping and multi-instance deployments do not
   multiply classes. *)
let class_of_instance name =
  let after_prefix =
    match String.index_opt name '.' with
    | Some dot when dot >= 2 && name.[0] = 'k' ->
        let digits = ref true in
        String.iteri
          (fun i c ->
            if i > 0 && i < dot && not ('0' <= c && c <= '9') then digits := false)
          name;
        if !digits then String.sub name (dot + 1) (String.length name - dot - 1)
        else name
    | _ -> name
  in
  match String.index_opt after_prefix '[' with
  | Some bracket
    when String.length after_prefix > 0
         && after_prefix.[String.length after_prefix - 1] = ']' ->
      String.sub after_prefix 0 bracket
  | _ -> after_prefix

type held_entry = { instance : string; cls : string; mode : mode }

type witness = {
  pid : int;
  time : float;
  held_instance : string;
  acquiring_instance : string;
  held_stack : string list;  (** innermost first *)
}

type t = {
  held : (int, held_entry list) Hashtbl.t;  (** pid -> held stack *)
  edges : (string * string, witness) Hashtbl.t;  (** first witness per edge *)
  mutable edge_order : (string * string) list;  (** reversed insertion order *)
  mutable immediate : Finding.t list;  (** reversed *)
  mutable sync_events : int;
}

let create () =
  {
    held = Hashtbl.create 64;
    edges = Hashtbl.create 64;
    edge_order = [];
    immediate = [];
    sync_events = 0;
  }

let sync_events t = t.sync_events
let edge_count t = Hashtbl.length t.edges

let held_stack t pid = Option.value ~default:[] (Hashtbl.find_opt t.held pid)

let stack_names stack = List.map (fun e -> e.instance) stack

let on_acquire t ~pid ~time ~name ~mode =
  let cls = class_of_instance name in
  let stack = held_stack t pid in
  if List.exists (fun e -> e.instance = name) stack then
    t.immediate <-
      Finding.make ~severity:Finding.Error ~check:"lockdep"
        ~code:"double-acquire"
        ~message:
          (Printf.sprintf "pid %d acquires %s%s while already holding it" pid
             name (mode_label mode))
        ~witness:
          [
            Printf.sprintf "t=%g pid=%d held [%s] -> acquiring %s" time pid
              (String.concat "; " (stack_names stack))
              name;
          ]
        ()
      :: t.immediate;
  List.iter
    (fun outer ->
      let key = (outer.cls, cls) in
      if not (Hashtbl.mem t.edges key) then begin
        Hashtbl.add t.edges key
          {
            pid;
            time;
            held_instance = outer.instance;
            acquiring_instance = name;
            held_stack = stack_names stack;
          };
        t.edge_order <- key :: t.edge_order
      end)
    stack;
  Hashtbl.replace t.held pid ({ instance = name; cls; mode } :: stack)

let rec remove_first name = function
  | [] -> None
  | e :: rest when e.instance = name -> Some rest
  | e :: rest -> Option.map (fun r -> e :: r) (remove_first name rest)

let on_release t ~pid ~time ~name ~mode =
  let stack = held_stack t pid in
  match remove_first name stack with
  | Some rest -> Hashtbl.replace t.held pid rest
  | None ->
      t.immediate <-
        Finding.make ~severity:Finding.Warning ~check:"lockdep"
          ~code:"release-not-held"
          ~message:
            (Printf.sprintf "pid %d releases %s%s which it does not hold" pid
               name (mode_label mode))
          ~witness:
            [
              Printf.sprintf "t=%g pid=%d held [%s]" time pid
                (String.concat "; " (stack_names stack));
            ]
          ()
        :: t.immediate

let on_event t (info : Engine.event_info) =
  match info with
  | Engine.Sync { now; pid; name; op } -> (
      t.sync_events <- t.sync_events + 1;
      match op with
      | Engine.Acquire _ -> on_acquire t ~pid ~time:now ~name ~mode:Mutex
      | Engine.Release -> on_release t ~pid ~time:now ~name ~mode:Mutex
      | Engine.Read_acquire _ -> on_acquire t ~pid ~time:now ~name ~mode:Read
      | Engine.Read_release -> on_release t ~pid ~time:now ~name ~mode:Read
      | Engine.Write_acquire _ -> on_acquire t ~pid ~time:now ~name ~mode:Write
      | Engine.Write_release -> on_release t ~pid ~time:now ~name ~mode:Write
      | Engine.Barrier_arrive _ | Engine.Barrier_release _
      | Engine.Barrier_depart _ ->
          ())
  | Engine.Scheduled _ | Engine.Executed _ | Engine.Suspended _
  | Engine.Woken _ | Engine.Injected _ | Engine.Denied _
  | Engine.Rank_transition _ ->
      ()

(* --- cycle detection -------------------------------------------------- *)

(* Tarjan SCC over the class graph.  Each non-trivial SCC (more than one
   class, or a class with a self-edge from same-class nesting) is one
   potential-deadlock finding, so an AB/BA inversion reports exactly one
   cycle naming both classes. *)
let strongly_connected_components ~nodes ~succs =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !sccs

let cycle_findings t =
  let adjacency = Hashtbl.create 16 in
  let node_set = Hashtbl.create 16 in
  let nodes = ref [] in
  let note_node n =
    if not (Hashtbl.mem node_set n) then begin
      Hashtbl.add node_set n ();
      nodes := n :: !nodes
    end
  in
  (* Deterministic traversal: follow edge insertion order, not hash order. *)
  List.iter
    (fun (src, dst) ->
      note_node src;
      note_node dst;
      let existing = Option.value ~default:[] (Hashtbl.find_opt adjacency src) in
      Hashtbl.replace adjacency src (dst :: existing))
    (List.rev t.edge_order);
  let succs v =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt adjacency v))
  in
  let sccs = strongly_connected_components ~nodes:(List.rev !nodes) ~succs in
  List.filter_map
    (fun scc ->
      let cyclic =
        match scc with
        | [ v ] -> Hashtbl.mem t.edges (v, v)
        | _ :: _ :: _ -> true
        | [] -> false
      in
      if not cyclic then None
      else begin
        let members = List.sort String.compare scc in
        let in_scc c = List.mem c members in
        let witness_lines =
          List.filter_map
            (fun ((src, dst) as key) ->
              if in_scc src && in_scc dst then
                let w = Hashtbl.find t.edges key in
                Some
                  (Printf.sprintf
                     "edge %s -> %s: pid %d at t=%g held [%s] while acquiring %s"
                     src dst w.pid w.time
                     (String.concat "; " w.held_stack)
                     w.acquiring_instance)
              else None)
            (List.rev t.edge_order)
        in
        Some
          (Finding.make ~severity:Finding.Error ~check:"lockdep"
             ~code:"lock-order-cycle"
             ~message:
               (Printf.sprintf "potential deadlock: lock-order cycle [%s]"
                  (String.concat " -> " (members @ [ List.hd members ])))
             ~witness:witness_lines ())
      end)
    sccs

let leak_findings t =
  let leaks =
    Hashtbl.fold
      (fun pid stack acc ->
        List.fold_left
          (fun acc e ->
            Finding.make ~severity:Finding.Warning ~check:"lockdep"
              ~code:"held-at-drain"
              ~message:
                (Printf.sprintf
                   "pid %d still holds %s%s (class %s) when the engine drained"
                   pid e.instance (mode_label e.mode) e.cls)
              ()
            :: acc)
          acc stack)
      t.held []
  in
  List.sort (fun (a : Finding.t) b -> String.compare a.message b.message) leaks

(* [drained] should be true only when the engine ran out of events: a
   run stopped early by a predicate legitimately leaves locks held. *)
let finish ?(drained = true) t =
  List.rev t.immediate
  @ (if drained then leak_findings t else [])
  @ cycle_findings t
