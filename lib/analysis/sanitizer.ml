(* Orchestrates the analyzers over a scenario: one instrumented run for
   the static checks (lockdep + invariants, one analyzer state per
   engine the scenario creates), plus a double run for the determinism
   checker.  Engine crashes during an instrumented run are converted
   into findings rather than aborting the analysis. *)

module Engine = Ksurf_sim.Engine

type check = Lockdep | Invariants | Determinism

let all_checks = [ Lockdep; Invariants; Determinism ]

let check_name = function
  | Lockdep -> "lockdep"
  | Invariants -> "invariants"
  | Determinism -> "determinism"

let check_of_string = function
  | "lockdep" -> Some Lockdep
  | "invariants" -> Some Invariants
  | "determinism" -> Some Determinism
  | _ -> None

(* "lockdep,determinism" -> Ok [Lockdep; Determinism]; first unknown
   name is returned as the error. *)
let checks_of_string s =
  let names =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun n -> n <> "")
  in
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ -> acc
      | Ok checks -> (
          match check_of_string name with
          | Some c -> Ok (checks @ [ c ])
          | None -> Error name))
    (Ok []) names

type outcome = {
  scenario : Scenarios.t;
  seed : int;
  checks : check list;
  findings : Finding.t list;
  events : int;  (** probe events observed across all runs *)
  runs : int;  (** scenario executions performed *)
}

let crash_finding exn =
  match exn with
  | Engine.Process_error (ctx, inner) ->
      Finding.make ~severity:Finding.Error ~check:"crash" ~code:"process-error"
        ~message:
          (Printf.sprintf "simulation process crashed %s: %s" ctx
             (Printexc.to_string inner))
        ()
  | exn ->
      Finding.make ~severity:Finding.Error ~check:"crash" ~code:"exception"
        ~message:(Printf.sprintf "scenario raised: %s" (Printexc.to_string exn))
        ()

let run ~scenario ~seed ~checks () =
  let findings = ref [] in
  let events = ref 0 in
  let runs = ref 0 in
  let add fs = findings := !findings @ fs in
  let static_checks =
    List.filter (fun c -> c = Lockdep || c = Invariants) checks
  in
  if static_checks <> [] then begin
    incr runs;
    let attached = ref [] in
    let on_engine engine =
      let lockdep =
        if List.mem Lockdep static_checks then Some (Lockdep.create ())
        else None
      in
      let invariants =
        if List.mem Invariants static_checks then Some (Invariants.create ())
        else None
      in
      Option.iter
        (fun state -> Engine.add_probe engine (Lockdep.on_event state))
        lockdep;
      Option.iter
        (fun state -> Engine.add_probe engine (Invariants.on_event state))
        invariants;
      Engine.add_probe engine (fun _ -> incr events);
      attached := (engine, lockdep, invariants) :: !attached
    in
    (try Scenarios.run scenario ~seed ~on_engine
     with exn -> add [ crash_finding exn ]);
    List.iter
      (fun (engine, lockdep, invariants) ->
        (* Leak/stuck checks only apply when the engine genuinely ran
           out of events; runs stopped by a predicate (with background
           daemons still pending) legitimately leave state in flight. *)
        let drained = Engine.pending engine = 0 in
        Option.iter (fun s -> add (Lockdep.finish ~drained s)) lockdep;
        Option.iter (fun s -> add (Invariants.finish ~drained s)) invariants)
      (List.rev !attached)
  end;
  if List.mem Determinism checks then begin
    let result =
      Determinism.check
        ~run:(fun ~probe ->
          incr runs;
          Scenarios.run scenario ~seed ~on_engine:(fun engine ->
              Engine.add_probe engine (fun info ->
                  incr events;
                  probe info)))
        ()
    in
    add (Determinism.to_findings result)
  end;
  {
    scenario;
    seed;
    checks;
    findings = Finding.sort !findings;
    events = !events;
    runs = !runs;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "analyze %s seed=%d checks=%s: %d finding(s), %d events, %d run(s)"
    (Scenarios.to_string o.scenario)
    o.seed
    (String.concat "," (List.map check_name o.checks))
    (List.length o.findings) o.events o.runs;
  List.iter (fun f -> Format.fprintf ppf "@.  %a" Finding.pp f) o.findings;
  if o.findings = [] then Format.fprintf ppf "@.  no findings: all checks clean"
