(** Engine invariant sanitizer.

    Re-checks, over the probe event stream, what the engine and the
    synchronization primitives promise structurally: events never
    scheduled in the past, execution time never regressing, suspensions
    woken at most once, barrier generations monotone and gap-free, and
    per-lock contention counters consistent.  The engine hard-raises on
    some of these itself; the sanitizer exists so a future engine
    change that silently drops a guard is still caught. *)

type t

val create : unit -> t

val on_event : t -> Ksurf_sim.Engine.event_info -> unit
(** Probe entry point. *)

val events : t -> int
(** Events seen so far. *)

val finish : ?drained:bool -> t -> Finding.t list
(** Findings in event order, then counter inconsistencies, then (only
    when [drained], default [true]) suspensions that were never woken —
    a run stopped early by a predicate legitimately leaves processes
    parked. *)
