(* Engine invariant sanitizer: a net over the probe event stream that
   re-checks what the engine and the synchronization primitives promise
   structurally — events never scheduled in the past, execution time
   never regressing, suspensions woken at most once, barrier
   generations monotone and gap-free, and per-lock contention counters
   consistent ([acquisitions >= contended] at drain).  The engine
   hard-raises on some of these itself; the sanitizer exists so a
   future engine change that silently drops a guard is still caught. *)

module Engine = Ksurf_sim.Engine

type lock_counts = { mutable acquires : int; mutable contended : int }

type t = {
  mutable findings : Finding.t list;  (** reversed *)
  tokens : (int, bool) Hashtbl.t;  (** suspension token -> woken? *)
  barriers : (string, int) Hashtbl.t;  (** barrier -> last generation *)
  locks : (string, lock_counts) Hashtbl.t;
  ranks : (int, string) Hashtbl.t;  (** rank -> last detector state *)
  policies : (int, string) Hashtbl.t;  (** rank -> last policy state *)
  rank_edges : (int * int * string, int) Hashtbl.t;
      (** (rank, incident, edge) -> occurrences *)
  mutable last_exec_time : float;
  mutable events : int;
}

let create () =
  {
    findings = [];
    tokens = Hashtbl.create 64;
    barriers = Hashtbl.create 8;
    locks = Hashtbl.create 64;
    ranks = Hashtbl.create 8;
    policies = Hashtbl.create 8;
    rank_edges = Hashtbl.create 16;
    last_exec_time = neg_infinity;
    events = 0;
  }

let events t = t.events

let add t ~severity ~code message =
  t.findings <-
    Finding.make ~severity ~check:"invariants" ~code ~message () :: t.findings

let counts_for t name =
  match Hashtbl.find_opt t.locks name with
  | Some c -> c
  | None ->
      let c = { acquires = 0; contended = 0 } in
      Hashtbl.add t.locks name c;
      c

let on_event t (info : Engine.event_info) =
  t.events <- t.events + 1;
  match info with
  | Engine.Scheduled { now; at; pid } ->
      if at < now then
        add t ~severity:Finding.Error ~code:"scheduled-in-past"
          (Printf.sprintf "pid %d scheduled an event at t=%g before now=%g" pid
             at now)
  | Engine.Executed { now; _ } ->
      if now < t.last_exec_time then
        add t ~severity:Finding.Error ~code:"time-regression"
          (Printf.sprintf "event executed at t=%g after t=%g" now
             t.last_exec_time)
      else t.last_exec_time <- now
  | Engine.Suspended { token; pid; now } ->
      if Hashtbl.mem t.tokens token then
        add t ~severity:Finding.Error ~code:"suspension-token-reused"
          (Printf.sprintf "suspension token %d reused by pid %d at t=%g" token
             pid now)
      else Hashtbl.add t.tokens token false
  | Engine.Woken { token; pid; now } -> (
      match Hashtbl.find_opt t.tokens token with
      | None ->
          add t ~severity:Finding.Error ~code:"wake-without-suspend"
            (Printf.sprintf "token %d woken (pid %d, t=%g) but never suspended"
               token pid now)
      | Some true ->
          add t ~severity:Finding.Error ~code:"double-wake"
            (Printf.sprintf "token %d (pid %d) woken twice, second at t=%g"
               token pid now)
      | Some false -> Hashtbl.replace t.tokens token true)
  | Engine.Sync { name; op; now; _ } -> (
      match op with
      | Engine.Acquire { contended }
      | Engine.Read_acquire { contended }
      | Engine.Write_acquire { contended } ->
          let c = counts_for t name in
          c.acquires <- c.acquires + 1;
          if contended then c.contended <- c.contended + 1
      | Engine.Release | Engine.Read_release | Engine.Write_release -> ()
      | Engine.Barrier_arrive { generation; arrived; parties } ->
          if arrived < 1 || arrived > parties then
            add t ~severity:Finding.Error ~code:"barrier-arrival-out-of-range"
              (Printf.sprintf
                 "barrier %s: arrival count %d outside 1..%d at t=%g" name
                 arrived parties now);
          let last = Option.value ~default:0 (Hashtbl.find_opt t.barriers name) in
          if generation < last then
            add t ~severity:Finding.Error ~code:"barrier-generation-regressed"
              (Printf.sprintf
                 "barrier %s: arrival saw generation %d after %d at t=%g" name
                 generation last now)
          else Hashtbl.replace t.barriers name generation
      | Engine.Barrier_release { generation } ->
          let last = Option.value ~default:0 (Hashtbl.find_opt t.barriers name) in
          if generation <> last + 1 then
            add t ~severity:Finding.Error ~code:"barrier-generation-skip"
              (Printf.sprintf
                 "barrier %s: released generation %d, expected %d at t=%g" name
                 generation (last + 1) now)
          else Hashtbl.replace t.barriers name generation
      | Engine.Barrier_depart { parties; _ } ->
          if parties < 1 then
            add t ~severity:Finding.Error ~code:"barrier-empty-after-depart"
              (Printf.sprintf "barrier %s: left with %d parties at t=%g" name
                 parties now))
  | Engine.Injected _ | Engine.Denied _ -> ()
  | Engine.Rank_transition { now; rank; from_state; to_state; incident; _ } ->
      (* Two disjoint per-rank state machines share the transition
         event.  Failure-detector protocol (krecov): transitions must
         follow alive -> suspect -> {alive, dead} -> alive, each event's
         [from_state] must agree with the rank's last reported state,
         and within one incident no edge may repeat — one suspicion, at
         most one death, at most one rejoin.  Policy protocol (kadapt):
         a rank's syscall policy moves unfiltered -> {audit, enforce},
         promotes audit -> enforce, and demotes enforce -> audit; it
         never returns to unfiltered, and the same last-state continuity
         rule applies on its own track. *)
      let policy_state s =
        s = "unfiltered" || s = "audit" || s = "enforce"
      in
      let is_policy = policy_state from_state && policy_state to_state in
      let valid =
        match (from_state, to_state) with
        | "alive", "suspect"
        | "suspect", "alive"
        | "suspect", "dead"
        | "dead", "alive"
        | "unfiltered", "audit"
        | "unfiltered", "enforce"
        | "audit", "enforce"
        | "enforce", "audit" ->
            true
        | _ -> false
      in
      if not valid then
        add t ~severity:Finding.Error ~code:"rank-transition-invalid"
          (Printf.sprintf "rank %d: illegal transition %s->%s at t=%g" rank
             from_state to_state now);
      let track = if is_policy then t.policies else t.ranks in
      (match Hashtbl.find_opt track rank with
      | Some last when last <> from_state ->
          add t ~severity:Finding.Error ~code:"rank-transition-discontinuous"
            (Printf.sprintf
               "rank %d: transition claims from %s but last state was %s at \
                t=%g"
               rank from_state last now)
      | Some _ | None -> ());
      Hashtbl.replace track rank to_state;
      let edge = Printf.sprintf "%s->%s" from_state to_state in
      let key = (rank, incident, edge) in
      let seen = Option.value ~default:0 (Hashtbl.find_opt t.rank_edges key) in
      if seen > 0 then
        add t ~severity:Finding.Error ~code:"rank-transition-repeated"
          (Printf.sprintf
             "rank %d incident %d: transition %s reported %d times at t=%g"
             rank incident edge (seen + 1) now);
      Hashtbl.replace t.rank_edges key (seen + 1)

(* [drained] as in {!Lockdep.finish}: stuck-process checks only make
   sense when the engine genuinely ran out of events. *)
let finish ?(drained = true) t =
  let counter_findings =
    Hashtbl.fold
      (fun name c acc ->
        if c.contended > c.acquires then
          Finding.make ~severity:Finding.Error ~check:"invariants"
            ~code:"contended-exceeds-acquisitions"
            ~message:
              (Printf.sprintf "%s: %d contended acquisitions out of %d total"
                 name c.contended c.acquires)
            ()
          :: acc
        else acc)
      t.locks []
  in
  let stuck =
    if not drained then []
    else
      Hashtbl.fold
        (fun token woken acc ->
          if woken then acc
          else
            Finding.make ~severity:Finding.Warning ~check:"invariants"
              ~code:"suspended-at-drain"
              ~message:
                (Printf.sprintf
                   "suspension %d was never woken: a process is stuck" token)
              ()
            :: acc)
        t.tokens []
  in
  let stable =
    List.sort (fun (a : Finding.t) b -> String.compare a.message b.message)
  in
  List.rev t.findings @ stable counter_findings @ stable stuck
