(* A sanitizer finding: one defect (or suspected defect) in the
   simulated kernel's synchronization or the engine's bookkeeping,
   with enough witness context to act on it. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  check : string;  (** which analyzer produced it: lockdep, invariants, ... *)
  code : string;  (** stable machine-readable kind: lock-order-cycle, ... *)
  message : string;
  witness : string list;  (** trace excerpt: one line per witness event *)
}

let make ~severity ~check ~code ~message ?(witness = []) () =
  { severity; check; code; message; witness }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Stable report order: errors first, then by analyzer and message. *)
let sort findings =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
          match String.compare a.check b.check with
          | 0 -> (
              match String.compare a.code b.code with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
    findings

let errors findings = List.filter (fun f -> f.severity = Error) findings

let pp ppf f =
  Format.fprintf ppf "[%s] %s/%s: %s"
    (String.uppercase_ascii (severity_name f.severity))
    f.check f.code f.message;
  List.iter (fun line -> Format.fprintf ppf "@.    %s" line) f.witness

let csv_header = [ "severity"; "check"; "code"; "message"; "witness" ]

let csv_rows findings =
  List.map
    (fun f ->
      [
        severity_name f.severity;
        f.check;
        f.code;
        f.message;
        String.concat " | " f.witness;
      ])
    findings

let export_csv ~path findings =
  Ksurf_report.Csv.write ~path ~header:csv_header ~rows:(csv_rows findings)
