(** Orchestrates the analyzers over a scenario: one instrumented run
    for the static checks (lockdep + invariants, one analyzer state per
    engine the scenario creates), plus a double run for the determinism
    checker.  Engine crashes during an instrumented run are converted
    into findings rather than aborting the analysis. *)

type check = Lockdep | Invariants | Determinism

val all_checks : check list

val check_name : check -> string
val check_of_string : string -> check option

val checks_of_string : string -> (check list, string) Stdlib.result
(** Parse a comma-separated selection, e.g. ["lockdep,determinism"].
    The first unknown name is returned as [Error]. *)

type outcome = {
  scenario : Scenarios.t;
  seed : int;
  checks : check list;
  findings : Finding.t list;  (** sorted: errors first *)
  events : int;  (** probe events observed across all runs *)
  runs : int;  (** scenario executions performed *)
}

val run : scenario:Scenarios.t -> seed:int -> checks:check list -> unit -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
(** Summary line followed by each finding (or an explicit "all checks
    clean"). *)
