(** Fixed-size [Domain]-based worker pool for sweep cells.

    Every study in this repo is a sweep of fully independent cells —
    each cell owns its own {!Ksurf_sim.Engine} and split PRNG stream —
    so cells can execute on any domain in any order without changing
    their results.  {!map} fans a cell list out across the pool's
    domains and merges the results back in canonical input order, so a
    parallel sweep is bit-identical to a sequential one ([~jobs:1] and
    [~jobs:n] produce the same CSVs, exports and tables for every
    study).  Determinism therefore lives in the {e merge}, never in the
    schedule.

    The submitting domain participates in its own batch (it claims and
    runs cells alongside the workers), so a pool of [jobs] runs at most
    [jobs] cells concurrently and [map] may be called from inside a
    worker task (nested sweeps, e.g. a parallel Fig-4 sweep whose cells
    parallelize their own node simulations) without deadlock: the
    nested caller drains its own batch. *)

type t

val default_jobs : unit -> int
(** [KSURF_JOBS] when set to a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)] — one domain is
    left for the OS and the submitting main loop.  A malformed
    [KSURF_JOBS] (zero, negative, or not a number) is diagnosed on
    stderr and falls back to the machine default; an empty string is
    treated as unset, silently (putenv cannot remove a variable). *)

val tune_minor_heap : unit -> unit
(** Grow the calling domain's minor heap to the kpar default (8M words
    unless [KSURF_MINOR_WORDS] overrides it), unless the user already
    chose a size via [s=<n>] in [OCAMLRUNPARAM].  Never shrinks.

    OCaml 5 minor collections are a stop-the-world rendezvous of every
    domain, and the setting does not propagate to spawned domains —
    {!create} calls this for the submitting domain and each worker
    calls it for itself.  Exposed so benchmark harnesses measuring raw
    multi-domain engine throughput (outside any pool) run under the
    same GC regime as a sweep. *)

val resolve_jobs : ?cli:int -> unit -> int
(** The worker-count precedence rule shared by [ksurf_cli] and
    [bench/main.exe]: an explicit [--jobs] value ([cli], clamped to at
    least 1) always wins over [KSURF_JOBS], which wins over the
    machine-derived default ({!default_jobs}). *)

val create : ?jobs:int -> unit -> t
(** A pool running at most [jobs] (default {!default_jobs}) cells
    concurrently: [jobs - 1] worker domains plus the submitting domain.
    [jobs <= 1] spawns no domains at all — {!map} then degenerates to
    [List.map] on the calling domain. *)

val jobs : t -> int

val map : pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~pool f cells] applies [f] to every cell, running up to
    [jobs pool] applications concurrently, and returns the results in
    input order.  If one or more applications raise, the exception of
    the {e earliest failing cell in input order} is re-raised (with its
    backtrace) after every cell has finished — which exception wins is
    therefore deterministic.  [f] must not assume anything about which
    domain it runs on; cells must not share mutable state except
    through their own synchronisation (e.g. the mutex-guarded
    {!Ksurf_recov.Journal}). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Calling {!map}
    after [shutdown] raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (also on exceptions). *)
