(* A fixed-size domain pool tuned for this repo's shape of work: a
   handful of long batches (sweeps) of independent, coarse cells — not
   millions of fine-grained tasks.  So the scheduler is deliberately
   simple: a queue of batches, each batch an array of cells claimed in
   chunks through an atomic cursor.  The submitting domain claims
   cells from its own batch too, which (a) uses all [jobs] domains and
   (b) makes nested [map] calls deadlock-free: a worker that submits a
   sub-batch drives that sub-batch itself, so progress never depends on
   another domain being free.

   Determinism: results land in a per-batch array at their input index,
   so the merged list is in canonical input order no matter which
   domain ran which cell or when.  Exceptions are captured per cell and
   the earliest failing input re-raised, so even the failure mode is
   schedule-independent.

   Two scaling hazards shaped the claiming scheme (DESIGN §6): OCaml 5
   minor collections are a stop-the-world rendezvous of *every* domain,
   so each worker sizes its own minor heap up on entry (the default
   256k-word arena turns an allocation-heavy sweep into a GC-barrier
   convoy — measured 0.31x at jobs=8 before, on one core); and the two
   per-batch atomics are padded apart so cursor claims and completion
   counts do not bounce one cache line between domains. *)

(* One submitted [map]: claim a run of indices with [next], run them,
   count completions with [left].  The batch stays on the pool queue
   until every index is claimed; completion is signalled to the
   submitter through its own condition so unrelated batches don't wake
   it. *)
type batch = {
  run : int -> unit;  (* never raises; stores result or exception *)
  size : int;
  chunk : int;  (* indices claimed per [next] bump, >= 1 *)
  next : int Atomic.t;
  pad : int array;
      (* Dead weight between [next] and [left]: keeps the two hottest
         atomics on different cache lines (OCaml 5.1 has no padded
         atomics).  Held in the record so the GC cannot collect the
         separation away. *)
  left : int Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

type t = {
  jobs : int;
  lock : Mutex.t;  (* guards [queue], [state] *)
  work : Condition.t;
  queue : batch Queue.t;
  mutable state : [ `Running | `Stopped ];
  mutable domains : unit Domain.t list;
}

let warn_invalid_jobs s fallback =
  Printf.eprintf
    "ksurf: ignoring invalid KSURF_JOBS=%S (expected a positive integer); \
     using %d\n\
     %!"
    s fallback

let default_jobs () =
  let fallback = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "KSURF_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          (* An empty string is how callers unset the variable (putenv
             cannot remove); only warn about genuinely malformed
             values, and still fall back so a typo degrades to the
             machine default instead of killing the run. *)
          if String.trim s <> "" then warn_invalid_jobs s fallback;
          fallback)
  | None -> fallback

(* The one precedence rule for worker counts, shared by every binary:
   an explicit CLI flag always beats the environment, which beats the
   machine-derived default. *)
let resolve_jobs ?cli () =
  match cli with Some n -> max 1 n | None -> default_jobs ()

let jobs t = t.jobs

(* --- Minor-heap sizing ---------------------------------------------- *)

(* OCaml 5 minor collections stop the world: every domain must reach a
   safepoint before any can collect, and on an oversubscribed or busy
   machine that rendezvous costs scheduling quanta, not microseconds.
   The default 256k-word arena makes an allocation-heavy simulation hit
   that barrier thousands of times per second, which is the measured
   anti-scaling of BENCH_kpar.json (0.31x at jobs=8).  Sizing the arena
   up ~32x makes collections correspondingly rarer.

   The size is per domain and does *not* propagate to spawned domains,
   so [create] applies it to the submitting domain and every worker
   applies it to itself on entry.  Users stay in charge: an explicit
   s=<n> in OCAMLRUNPARAM or a KSURF_MINOR_WORDS override wins, and we
   only ever grow the arena, never shrink it. *)
let default_minor_words = 8 * 1024 * 1024 (* words: 64 MB per domain on 64-bit *)

let user_sized_minor_heap () =
  match Sys.getenv_opt "OCAMLRUNPARAM" with
  | None -> false
  | Some p ->
      String.split_on_char ',' p
      |> List.exists (fun kv ->
             String.length kv >= 2 && kv.[0] = 's' && kv.[1] = '=')

let minor_heap_target () =
  match Sys.getenv_opt "KSURF_MINOR_WORDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None ->
          if String.trim s <> "" then
            Printf.eprintf
              "ksurf: ignoring invalid KSURF_MINOR_WORDS=%S (expected a \
               positive word count); using %d\n\
               %!"
              s default_minor_words;
          default_minor_words)
  | None -> default_minor_words

let tune_minor_heap () =
  if not (user_sized_minor_heap ()) then begin
    let target = minor_heap_target () in
    let g = Gc.get () in
    if g.Gc.minor_heap_size < target then
      Gc.set { g with Gc.minor_heap_size = target }
  end

(* Claim-and-run until the batch has no unclaimed cells.  Runs on
   workers and on the submitting domain alike.  Claims advance the
   cursor by [chunk] indices at a time: for the typical sweep (tens of
   coarse cells) the chunk is 1 and claiming is exactly per-cell, while
   many-small-cell batches amortise the shared-cursor traffic across a
   run of cells. *)
let drain (b : batch) =
  let rec loop () =
    let base = Atomic.fetch_and_add b.next b.chunk in
    if base < b.size then begin
      let stop = min b.size (base + b.chunk) in
      for i = base to stop - 1 do
        b.run i
      done;
      let claimed = stop - base in
      if Atomic.fetch_and_add b.left (-claimed) = claimed then begin
        (* Last cell: wake the submitter — the only waiter on this
           condition, so [signal] suffices (it re-checks [left] under
           the mutex, so the wakeup cannot be lost). *)
        Mutex.lock b.done_mutex;
        Condition.signal b.done_cond;
        Mutex.unlock b.done_mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec find () =
    if t.state = `Stopped then None
    else
      match Queue.peek_opt t.queue with
      | Some b when Atomic.get b.next < b.size -> Some b
      | Some _ ->
          (* Fully claimed (possibly still finishing elsewhere): done
             with it here. *)
          ignore (Queue.pop t.queue);
          find ()
      | None ->
          Condition.wait t.work t.lock;
          find ()
  in
  match find () with
  | None -> Mutex.unlock t.lock
  | Some b ->
      Mutex.unlock t.lock;
      drain b;
      worker_loop t

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  tune_minor_heap ();
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      state = `Running;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1) (fun _ ->
          Domain.spawn (fun () ->
              (* Per-domain setting: workers must size their own arena
                 (the submitter's [tune_minor_heap] above does not reach
                 them). *)
              tune_minor_heap ();
              worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was = t.state in
  t.state <- `Stopped;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if was = `Running then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* How many cells one [next] bump claims.  Coarse sweeps (every study:
   tens of cells, seconds each) want chunk 1 — anything larger idles
   domains at the tail.  Fine-grained batches (hundreds+ of cells) want
   runs long enough that the shared cursor stops being a per-cell
   synchronisation point, while still leaving every domain several
   claims for load balance. *)
let chunk_for ~jobs ~size =
  if size <= jobs * 16 then 1 else max 1 (size / (jobs * 16))

let map ~pool f cells =
  let stopped () = invalid_arg "Pool.map: pool is shut down" in
  (* The state read is racy without the lock — a concurrent [shutdown]
     could flip it between our check and the enqueue.  All paths check
     under [pool.lock]; the batch path folds the check into the same
     critical section that publishes the batch, so a map that gets past
     it has its batch visible to [shutdown]'s final broadcast. *)
  let check_running_locked () =
    Mutex.lock pool.lock;
    let running = pool.state = `Running in
    Mutex.unlock pool.lock;
    if not running then stopped ()
  in
  match cells with
  | [] ->
      check_running_locked ();
      []
  | [ x ] ->
      check_running_locked ();
      [ f x ]
  | cells when pool.jobs <= 1 ->
      check_running_locked ();
      List.map f cells
  | cells ->
      let arr = Array.of_list cells in
      let n = Array.length arr in
      let results = Array.make n None in
      let run i =
        results.(i) <-
          (match f arr.(i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error (e, Printexc.get_raw_backtrace ())))
      in
      let chunk = chunk_for ~jobs:pool.jobs ~size:n in
      (* Explicit lets: record-field expressions evaluate in
         unspecified order, but the pad array only separates the
         atomics if it is allocated *between* them. *)
      let next = Atomic.make 0 in
      let pad = Array.make 15 0 in
      let left = Atomic.make n in
      let b =
        {
          run;
          size = n;
          chunk;
          next;
          pad;
          left;
          done_mutex = Mutex.create ();
          done_cond = Condition.create ();
        }
      in
      ignore (Sys.opaque_identity b.pad);
      Mutex.lock pool.lock;
      if pool.state <> `Running then begin
        Mutex.unlock pool.lock;
        stopped ()
      end;
      Queue.push b pool.queue;
      (* Wake only as many workers as the batch can occupy: the
         submitter takes one chunk itself, so a batch of [c] chunks
         needs at most [c - 1] helpers.  Waking all [jobs - 1] workers
         for a two-cell batch is the broadcast thundering herd the
         sweep profile showed; a missed signal is harmless because
         busy workers re-scan the queue before waiting and the
         submitter drains its own batch regardless. *)
      let chunks = (n + chunk - 1) / chunk in
      if chunks - 1 >= pool.jobs - 1 then Condition.broadcast pool.work
      else
        for _ = 1 to chunks - 1 do
          Condition.signal pool.work
        done;
      Mutex.unlock pool.lock;
      (* The submitter works its own batch, then waits for cells other
         domains claimed. *)
      drain b;
      Mutex.lock b.done_mutex;
      while Atomic.get b.left > 0 do
        Condition.wait b.done_cond b.done_mutex
      done;
      Mutex.unlock b.done_mutex;
      (* Every slot is filled; surface the earliest failure, else merge
         in input order. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)
