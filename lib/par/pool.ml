(* A fixed-size domain pool tuned for this repo's shape of work: a
   handful of long batches (sweeps) of independent, coarse cells — not
   millions of fine-grained tasks.  So the scheduler is deliberately
   simple: a queue of batches, each batch an array of cells claimed one
   at a time through an atomic cursor.  The submitting domain claims
   cells from its own batch too, which (a) uses all [jobs] domains and
   (b) makes nested [map] calls deadlock-free: a worker that submits a
   sub-batch drives that sub-batch itself, so progress never depends on
   another domain being free.

   Determinism: results land in a per-batch array at their input index,
   so the merged list is in canonical input order no matter which
   domain ran which cell or when.  Exceptions are captured per cell and
   the earliest failing input re-raised, so even the failure mode is
   schedule-independent. *)

(* One submitted [map]: claim an index with [next], run it, count
   completions with [left].  The batch stays on the pool queue until
   every index is claimed; completion is signalled to the submitter
   through its own condition so unrelated batches don't wake it. *)
type batch = {
  run : int -> unit;  (* never raises; stores result or exception *)
  size : int;
  next : int Atomic.t;
  left : int Atomic.t;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
}

type t = {
  jobs : int;
  lock : Mutex.t;  (* guards [queue], [state] *)
  work : Condition.t;
  queue : batch Queue.t;
  mutable state : [ `Running | `Stopped ];
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  let fallback = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "KSURF_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fallback)
  | None -> fallback

(* The one precedence rule for worker counts, shared by every binary:
   an explicit CLI flag always beats the environment, which beats the
   machine-derived default. *)
let resolve_jobs ?cli () =
  match cli with Some n -> max 1 n | None -> default_jobs ()

let jobs t = t.jobs

(* Claim-and-run until the batch has no unclaimed cells.  Runs on
   workers and on the submitting domain alike. *)
let drain (b : batch) =
  let rec loop () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.size then begin
      b.run i;
      if Atomic.fetch_and_add b.left (-1) = 1 then begin
        (* Last cell: wake the submitter (which checks [left] under the
           mutex, so the signal cannot be lost). *)
        Mutex.lock b.done_mutex;
        Condition.broadcast b.done_cond;
        Mutex.unlock b.done_mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec find () =
    if t.state = `Stopped then None
    else
      match Queue.peek_opt t.queue with
      | Some b when Atomic.get b.next < b.size -> Some b
      | Some _ ->
          (* Fully claimed (possibly still finishing elsewhere): done
             with it here. *)
          ignore (Queue.pop t.queue);
          find ()
      | None ->
          Condition.wait t.work t.lock;
          find ()
  in
  match find () with
  | None -> Mutex.unlock t.lock
  | Some b ->
      Mutex.unlock t.lock;
      drain b;
      worker_loop t

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      state = `Running;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was = t.state in
  t.state <- `Stopped;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if was = `Running then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ~pool f cells =
  if pool.state = `Stopped then invalid_arg "Pool.map: pool is shut down";
  match cells with
  | [] -> []
  | [ x ] -> [ f x ]
  | cells when pool.jobs <= 1 -> List.map f cells
  | cells ->
      let arr = Array.of_list cells in
      let n = Array.length arr in
      let results = Array.make n None in
      let run i =
        results.(i) <-
          (match f arr.(i) with
          | v -> Some (Ok v)
          | exception e -> Some (Error (e, Printexc.get_raw_backtrace ())))
      in
      let b =
        {
          run;
          size = n;
          next = Atomic.make 0;
          left = Atomic.make n;
          done_mutex = Mutex.create ();
          done_cond = Condition.create ();
        }
      in
      Mutex.lock pool.lock;
      Queue.push b pool.queue;
      Condition.broadcast pool.work;
      Mutex.unlock pool.lock;
      (* The submitter works its own batch, then waits for cells other
         domains claimed. *)
      drain b;
      Mutex.lock b.done_mutex;
      while Atomic.get b.left > 0 do
        Condition.wait b.done_cond b.done_mutex
      done;
      Mutex.unlock b.done_mutex;
      (* Every slot is filled; surface the earliest failure, else merge
         in input order. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)
