module Engine = Ksurf_sim.Engine
module Category = Ksurf_kernel.Category
module Program = Ksurf_syzgen.Program
module Corpus = Ksurf_syzgen.Corpus
module Generator = Ksurf_syzgen.Generator
module Profile = Ksurf_spec.Profile
module Spec = Ksurf_spec.Spec
module Specializer = Ksurf_spec.Specializer
module Env = Ksurf_env.Env
module Partition = Ksurf_env.Partition
module Plan = Ksurf_fault.Plan
module Kfault = Ksurf_fault.Kfault
module Prng = Ksurf_util.Prng
module Welford = Ksurf_util.Welford
module Streamstat = Ksurf_stats.Streamstat

type policy = Static | Audit_only | Adaptive

let policy_name = function
  | Static -> "static"
  | Audit_only -> "audit"
  | Adaptive -> "adaptive"

let policy_of_string = function
  | "static" -> Some Static
  | "audit" | "audit-only" -> Some Audit_only
  | "adaptive" -> Some Adaptive
  | _ -> None

let all_policies = [ Static; Audit_only; Adaptive ]

(* The learned workload lives in the file subsystems; drift moves calls
   onto everything else.  Same split Experiments.Specialize pins its
   workload with, so "what the profile never saw" is well-defined. *)
let base_categories = [ Category.File_io; Category.Fs_mgmt ]

let novel_categories = [ Category.Ipc; Category.Perm ]

type config = {
  policy : policy;
  dose : float;
  units : int;
  cores_per_unit : int;
  epochs : int;
  programs_per_epoch : int;
  think_ns : float;  (** idle gap after each program *)
  corpus_programs : int;
  drift_at_ns : float;
  base_shift : float;  (** mix shift at dose 1; scales with the dose *)
  seed : int;
  controller : Controller.config;
}

let default_config =
  {
    policy = Adaptive;
    dose = 1.0;
    units = 2;
    cores_per_unit = 2;
    epochs = 48;
    programs_per_epoch = 24;
    think_ns = 2_000.0;
    corpus_programs = 24;
    drift_at_ns = 16_000_000.0;
    base_shift = 0.25;
    seed = 42;
    controller = Controller.default_config;
  }

type result = {
  policy : string;
  dose : float;
  ranks : int;
  epochs : int;
  calls : int;
  denied : int;
  calls_post_drift : int;
  denied_post_drift : int;
  fp_rate : float;
  p99_ns : float;
  surface : float;
  surface_full : float;
  reduction : float;
  drift_at_ns : float option;
  reconverge_ns : float option;
  promotions : int;
  demotions : int;
  respecializations : int;
  swaps : int;
  drifts : int;
  mean_denial_rate : float;
  p95_divergence : float;
}

let restrict_or_fail corpus ~keep ~what =
  match Profile.restrict corpus ~keep with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Driftbench: corpus has no %s programs" what)

let drift_plan (cfg : config) =
  Plan.scale cfg.dose
    {
      Plan.name = "drift";
      actions =
        [ Plan.Workload_drift { at_ns = cfg.drift_at_ns; shift = cfg.base_shift } ];
    }

let run ?(on_engine = fun (_ : Engine.t) -> ()) (cfg : config) =
  let engine = Engine.create ~seed:cfg.seed () in
  on_engine engine;
  let partition =
    Partition.equal_split ~units:cfg.units
      ~total_cores:(cfg.units * cfg.cores_per_unit)
      ~total_mem_mb:(cfg.units * cfg.cores_per_unit * 512)
  in
  let env = Env.deploy ~engine Env.Multikernel partition in
  let ranks = Env.rank_count env in
  let corpus =
    (Generator.run
       ~params:
         {
           Generator.default_params with
           Generator.seed = cfg.seed;
           target_programs = cfg.corpus_programs;
         }
       ())
      .Generator.corpus
  in
  let base_corpus =
    restrict_or_fail corpus ~keep:base_categories ~what:"base (file)"
  in
  let novel_corpus =
    restrict_or_fail corpus ~keep:novel_categories ~what:"novel (non-file)"
  in
  let base_programs = Corpus.programs base_corpus in
  let novel_programs = Corpus.programs novel_corpus in
  (* Unspecialized baseline, before any policy is installed. *)
  let surface_full =
    let s = ref 0.0 in
    for r = 0 to ranks - 1 do
      s := !s +. Env.surface_area_of_rank env r
    done;
    !s /. float_of_int ranks
  in
  (* kfault drives the drift: the armed plan fires Workload_drift at its
     virtual trigger time; our sink moves the program mix. *)
  let fh = Kfault.arm ~env ~plan:(drift_plan cfg) ~seed:cfg.seed () in
  let current_shift = ref 0.0 in
  let drift_at = ref None in
  Kfault.set_drift_sink fh
    (Some
       (fun ~shift ->
         current_shift := shift;
         drift_at := Some (Engine.now engine)));
  let controllers =
    match cfg.policy with
    | Adaptive ->
        Some
          (Array.init ranks (fun r ->
               Controller.create ~config:cfg.controller env ~rank:r
                 ~name:(Printf.sprintf "drift-r%d" r)))
    | Static | Audit_only ->
        (* The offline kspec path: one profile of the pre-drift workload,
           compiled once, installed forever. *)
        let profile = Profile.of_corpus ~name:"drift-offline" base_corpus in
        let mode =
          match cfg.policy with
          | Static -> Spec.Enforce
          | Audit_only | Adaptive -> Spec.Audit
        in
        let spec = Specializer.compile ~mode profile in
        for r = 0 to ranks - 1 do
          Env.swap_policy env ~rank:r (Some (Specializer.policy spec))
        done;
        None
  in
  let root = Prng.create cfg.seed in
  let finished = ref 0 in
  let calls_total = ref 0 and denied_total = ref 0 in
  let calls_post = ref 0 and denied_post = ref 0 in
  let latencies = Streamstat.create () in
  let surface_samples = Welford.create () in
  List.iter
    (fun r ->
      let rng = Prng.split root (Printf.sprintf "drift-rank-%d" r) in
      Engine.spawn engine (fun () ->
          for _e = 1 to cfg.epochs do
            for _p = 1 to cfg.programs_per_epoch do
              let program =
                if !current_shift > 0.0 && Prng.chance rng !current_shift then
                  Prng.pick rng novel_programs
                else Prng.pick rng base_programs
              in
              let denied = ref 0 in
              List.iter
                (fun (c : Program.call) ->
                  match Env.try_syscall env ~rank:r c.Program.spec c.Program.arg with
                  | Env.Denied { latency_ns } ->
                      incr denied;
                      Streamstat.add latencies latency_ns
                  | Env.Completed latency_ns
                  | Env.Faulted { latency_ns; _ } ->
                      Streamstat.add latencies latency_ns)
                program.Program.calls;
              let n = List.length program.Program.calls in
              calls_total := !calls_total + n;
              denied_total := !denied_total + !denied;
              if !drift_at <> None then begin
                calls_post := !calls_post + n;
                denied_post := !denied_post + !denied
              end;
              (match controllers with
              | Some cs -> Controller.observe cs.(r) ~denied:!denied program
              | None -> ());
              if cfg.think_ns > 0.0 then Engine.delay cfg.think_ns
            done;
            (match controllers with
            | Some cs -> ignore (Controller.epoch cs.(r))
            | None -> ());
            Welford.add surface_samples (Env.surface_area_of_rank env r)
          done;
          incr finished))
    (List.init ranks Fun.id);
  (* The kernel instances run [forever] background daemons, so the
     engine never drains on its own: stop once every rank has finished
     its epochs (the drift trigger must be scheduled well before that
     point, or the dose is silently a no-op). *)
  Engine.run ~stop:(fun () -> !finished >= ranks) engine;
  let fstats = Kfault.stats fh in
  Kfault.disarm fh;
  let cstats =
    match controllers with
    | None -> []
    | Some cs -> Array.to_list (Array.map Controller.stats cs)
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 cstats in
  let promotions = sum (fun (s : Controller.stats) -> s.Controller.promotions) in
  let demotions = sum (fun (s : Controller.stats) -> s.Controller.demotions) in
  let respecializations =
    sum (fun (s : Controller.stats) -> s.Controller.respecializations)
  in
  let reconverge_ns =
    match (!drift_at, controllers) with
    | Some d, Some cs
      when Array.for_all (fun c -> Controller.state c = Controller.Enforcing) cs
      ->
        (* Reconverged iff every rank re-promoted after the drift; the
           fleet reconvergence time is the slowest rank's. *)
        let latest = ref neg_infinity in
        let all_after =
          Array.for_all
            (fun c ->
              match (Controller.stats c).Controller.last_promote_ns with
              | Some p when p > d ->
                  if p > !latest then latest := p;
                  true
              | _ -> false)
            cs
        in
        if all_after then Some (!latest -. d) else None
    | _ -> None
  in
  let fp_rate =
    match !drift_at with
    | Some _ when !calls_post > 0 ->
        float_of_int !denied_post /. float_of_int !calls_post
    | _ ->
        if !calls_total = 0 then 0.0
        else float_of_int !denied_total /. float_of_int !calls_total
  in
  let surface =
    if Welford.count surface_samples = 0 then surface_full
    else Welford.mean surface_samples
  in
  let mean_denial_rate =
    match cstats with
    | [] -> 0.0
    | _ ->
        List.fold_left
          (fun acc (s : Controller.stats) -> acc +. s.Controller.mean_denial_rate)
          0.0 cstats
        /. float_of_int (List.length cstats)
  in
  let p95_divergence =
    List.fold_left
      (fun acc (s : Controller.stats) ->
        match s.Controller.p95_divergence with
        | Some d -> Float.max acc d
        | None -> acc)
      0.0 cstats
  in
  {
    policy = policy_name cfg.policy;
    dose = cfg.dose;
    ranks;
    epochs = cfg.epochs;
    calls = !calls_total;
    denied = !denied_total;
    calls_post_drift = !calls_post;
    denied_post_drift = !denied_post;
    fp_rate;
    p99_ns = Streamstat.p99 latencies;
    surface;
    surface_full;
    reduction =
      (if surface_full > 0.0 then 1.0 -. (surface /. surface_full) else 0.0);
    drift_at_ns = !drift_at;
    reconverge_ns;
    promotions;
    demotions;
    respecializations;
    swaps = Env.policy_swaps env;
    drifts = fstats.Kfault.workload_drifts;
    mean_denial_rate;
    p95_divergence;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s @@ dose %.2f: %d calls, %d denied (fp %.4f), surface %.3f/%.3f \
     (reduction %.3f)@,\
     promotions %d, demotions %d, respecializations %d, swaps %d, drifts %d@,\
     reconverge %s@]"
    r.policy r.dose r.calls r.denied r.fp_rate r.surface r.surface_full
    r.reduction r.promotions r.demotions r.respecializations r.swaps r.drifts
    (match r.reconverge_ns with
    | None -> "n/a"
    | Some ns -> Printf.sprintf "%.0f ns" ns)
