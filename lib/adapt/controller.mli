(** The kadapt controller: online adaptive specialization for one rank.

    kspec compiles allowlists offline; this closes the loop live.  Each
    controller owns one rank's policy and cycles it through a two-phase
    state machine:

    - {b Auditing}: a permissive (or stale-allowlist) Audit-mode policy
      is installed and every program the rank issues feeds a live
      {!Ksurf_spec.Profile.recorder}.  The {e promotion rule} watches
      coverage stability: once [stability_epochs] consecutive
      sufficiently-fed epochs add no new coverage blocks, the recorded
      profile is compiled ({!Ksurf_spec.Specializer.compile}, [Enforce])
      and hot-installed via {!Ksurf_env.Env.swap_policy}.
    - {b Enforcing}: the {e drift detector} watches each epoch's
      enforced-denial rate and the total-variation divergence between
      the epoch's per-category call mix and the learned profile's mix
      (streamed into {!Ksurf_util.Welford} / {!Ksurf_stats.P2_quantile}
      diagnostics).  Either signal strictly exceeding its limit demotes
      the rank back to Auditing — stale allowlist kept in Audit mode so
      would-be denials stay probe-visible — and a fresh recorder
      re-learns the workload until the promotion rule fires again (a
      {e respecialization}).

    Every transition is a probe-visible
    [Engine.Rank_transition] between the policy states
    ["unfiltered"]/["audit"]/["enforce"] (emitted by
    {!Ksurf_env.Env.swap_policy}), and every denial is a probe-visible
    [Engine.Denied], so ksan's lockdep/determinism/invariant tooling
    sees the whole control loop.

    Hysteresis by construction: promotion needs [stability_epochs]
    {e consecutive} stable epochs, demotion needs [breach_epochs]
    {e consecutive} epochs with a signal {e strictly} above its limit,
    and underfed epochs (fewer than [min_epoch_calls] calls) are
    evidence of nothing — so a workload sitting exactly at a boundary
    never flaps. *)

type config = {
  stability_epochs : int;
      (** consecutive stable audit epochs required to promote (>= 1) *)
  min_epoch_calls : int;
      (** epochs with fewer calls count neither for promotion nor
          demotion (>= 1) *)
  denial_rate_limit : float;
      (** demote when an enforce epoch's denial rate strictly exceeds
          this *)
  divergence_limit : float;
      (** demote when an enforce epoch's call-mix total-variation
          divergence from the learned profile strictly exceeds this *)
  breach_epochs : int;
      (** consecutive over-limit enforce epochs required to demote
          (>= 1) — one noisy epoch is not drift *)
}

val default_config : config
(** 2 stable epochs, 16 calls minimum, 5% denial rate, 0.25 TV
    divergence, 2 breach epochs. *)

type state = Auditing | Enforcing

val state_name : state -> string

type decision = Promoted | Demoted | Stayed
(** What {!epoch} did. *)

type t

val create :
  ?config:config -> Ksurf_env.Env.t -> rank:int -> name:string -> t
(** Attach a controller to [rank]: installs the permissive audit-window
    policy (probe-visible ["unfiltered"] -> ["audit"] transition) and
    starts recording under profile name [name].  Raises
    [Invalid_argument] on a non-positive [stability_epochs],
    [min_epoch_calls] or [breach_epochs]. *)

val observe : t -> ?denied:int -> Ksurf_syzgen.Program.t -> unit
(** Account one issued program: its calls enter the epoch call-mix
    accumulators (and, while Auditing, the live recorder).  [denied] is
    how many of its calls the installed policy denied with ENOSYS —
    the harness counts [Env.Denied] outcomes; only enforced denials
    qualify. *)

val epoch : t -> decision
(** Close the current epoch: evaluate the promotion rule or the drift
    detector, swap the policy if either fires, and reset the epoch
    accumulators. *)

val state : t -> state
val spec : t -> Ksurf_spec.Spec.t option
(** The most recently compiled spec ([None] until first promotion). *)

val config : t -> config

type stats = {
  epochs : int;
  promotions : int;
  demotions : int;
  respecializations : int;  (** promotions after the first *)
  last_promote_ns : float option;
      (** virtual time of the latest promotion — the reconvergence
          marker *)
  mean_denial_rate : float;
      (** Welford mean over enforce-epoch denial rates (0 if none) *)
  p95_divergence : float option;
      (** P² 0.95 estimate over enforce-epoch divergences *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
