module Engine = Ksurf_sim.Engine
module Category = Ksurf_kernel.Category
module Instance = Ksurf_kernel.Instance
module Program = Ksurf_syzgen.Program
module Profile = Ksurf_spec.Profile
module Spec = Ksurf_spec.Spec
module Specializer = Ksurf_spec.Specializer
module Env = Ksurf_env.Env
module Welford = Ksurf_util.Welford
module P2 = Ksurf_stats.P2_quantile

type config = {
  stability_epochs : int;
  min_epoch_calls : int;
  denial_rate_limit : float;
  divergence_limit : float;
  breach_epochs : int;
}

let default_config =
  {
    stability_epochs = 2;
    min_epoch_calls = 16;
    denial_rate_limit = 0.05;
    divergence_limit = 0.25;
    breach_epochs = 2;
  }

type state = Auditing | Enforcing

let state_name = function Auditing -> "auditing" | Enforcing -> "enforcing"

type decision = Promoted | Demoted | Stayed

type t = {
  cfg : config;
  env : Env.t;
  rank : int;
  base_name : string;
  mutable state : state;
  mutable recorder : Profile.recorder;
  mutable audits : int;  (** audit windows opened (1 at create) *)
  mutable spec : Spec.t option;
  (* promotion rule: consecutive sufficiently-fed epochs whose coverage
     frontier did not move *)
  mutable last_blocks : int;
  mutable stable_epochs : int;
  (* drift detector hysteresis: consecutive over-limit enforce epochs *)
  mutable breaches : int;
  (* drift detector baseline: the promoted profile's category mix *)
  mutable baseline_mix : float array;
  (* per-epoch accumulators, reset by [epoch] *)
  mutable epoch_calls : int;
  mutable epoch_denied : int;
  epoch_mix : int array;
  (* streaming diagnostics over the whole run *)
  denial_rates : Welford.t;
  divergences : P2.t;
  (* counters *)
  mutable epochs : int;
  mutable promotions : int;
  mutable demotions : int;
  mutable last_promote_ns : float option;
}

let categories = List.length Category.all

(* The audit-window policy: allow everything, reduce nothing.  Installed
   at creation so the rank's policy state is "audit" from the first
   instruction, with the transition probe-visible. *)
let permissive_audit_policy () =
  {
    Instance.allows = (fun _ -> true);
    policy_mode = Instance.Audit;
    reachable = 1.0;
    denials = ref 0;
  }

let create ?(config = default_config) env ~rank ~name =
  if config.stability_epochs < 1 then
    invalid_arg "Controller.create: stability_epochs must be >= 1";
  if config.min_epoch_calls < 1 then
    invalid_arg "Controller.create: min_epoch_calls must be >= 1";
  if config.breach_epochs < 1 then
    invalid_arg "Controller.create: breach_epochs must be >= 1";
  let t =
    {
      cfg = config;
      env;
      rank;
      base_name = name;
      state = Auditing;
      recorder = Profile.recorder ~name ();
      audits = 1;
      spec = None;
      last_blocks = 0;
      stable_epochs = 0;
      breaches = 0;
      baseline_mix = Array.make categories 0.0;
      epoch_calls = 0;
      epoch_denied = 0;
      epoch_mix = Array.make categories 0;
      denial_rates = Welford.create ();
      divergences = P2.create 0.95;
      epochs = 0;
      promotions = 0;
      demotions = 0;
      last_promote_ns = None;
    }
  in
  Env.swap_policy env ~rank (Some (permissive_audit_policy ()));
  t

let observe t ?(denied = 0) (p : Program.t) =
  List.iter
    (fun (c : Program.call) ->
      List.iter
        (fun cat ->
          let i = Category.index cat in
          t.epoch_mix.(i) <- t.epoch_mix.(i) + 1)
        c.Program.spec.Ksurf_syscalls.Spec.categories)
    p.Program.calls;
  t.epoch_calls <- t.epoch_calls + List.length p.Program.calls;
  t.epoch_denied <- t.epoch_denied + denied;
  (* The audit window learns every program, including ones the stale
     allowlist would have denied — that is the whole point of demoting
     before re-learning. *)
  if t.state = Auditing then Profile.observe t.recorder p

(* Total-variation distance between the learned mix and this epoch's
   mix: 1/2 sum |p_i - q_i|, in [0, 1]. *)
let divergence t =
  let total = float_of_int (Array.fold_left ( + ) 0 t.epoch_mix) in
  if total = 0.0 then 0.0
  else begin
    let d = ref 0.0 in
    Array.iteri
      (fun i n -> d := !d +. Float.abs ((float_of_int n /. total) -. t.baseline_mix.(i)))
      t.epoch_mix;
    0.5 *. !d
  end

let promote t =
  let profile = Profile.snapshot t.recorder in
  let spec = Specializer.compile ~mode:Spec.Enforce profile in
  t.baseline_mix <- Profile.mix profile;
  Env.swap_policy t.env ~rank:t.rank (Some (Specializer.policy spec));
  t.spec <- Some spec;
  t.state <- Enforcing;
  t.promotions <- t.promotions + 1;
  t.stable_epochs <- 0;
  t.breaches <- 0;
  t.last_promote_ns <- Some (Engine.now (Env.engine t.env));
  Promoted

let demote t =
  (match t.spec with
  | Some spec ->
      (* Keep the stale allowlist installed in Audit mode: would-be
         denials stay probe-visible while the re-learn happens, but
         nothing is stopped and no surface credit is claimed. *)
      Env.swap_policy t.env ~rank:t.rank
        (Some (Specializer.policy { spec with Spec.mode = Spec.Audit }))
  | None ->
      Env.swap_policy t.env ~rank:t.rank (Some (permissive_audit_policy ())));
  t.audits <- t.audits + 1;
  t.recorder <-
    Profile.recorder
      ~name:(Printf.sprintf "%s#%d" t.base_name t.audits)
      ();
  t.state <- Auditing;
  t.demotions <- t.demotions + 1;
  t.last_blocks <- 0;
  t.stable_epochs <- 0;
  t.breaches <- 0;
  Demoted

let epoch t =
  t.epochs <- t.epochs + 1;
  let calls = t.epoch_calls in
  let decision =
    if calls < t.cfg.min_epoch_calls then Stayed
      (* An underfed epoch is evidence of nothing: it neither advances
         the stability count nor triggers the drift detector. *)
    else
      match t.state with
      | Auditing ->
          let blocks = Profile.observed_blocks t.recorder in
          if blocks > 0 && blocks = t.last_blocks then begin
            t.stable_epochs <- t.stable_epochs + 1;
            if t.stable_epochs >= t.cfg.stability_epochs then promote t
            else Stayed
          end
          else begin
            t.last_blocks <- blocks;
            t.stable_epochs <- 0;
            Stayed
          end
      | Enforcing ->
          let rate = float_of_int t.epoch_denied /. float_of_int calls in
          let div = divergence t in
          Welford.add t.denial_rates rate;
          P2.add t.divergences div;
          (* Strict inequalities: sitting exactly on a limit is not
             drift.  One noisy epoch is not drift either — demotion
             needs [breach_epochs] consecutive over-limit epochs, so
             the boundary cannot flap in either direction. *)
          if rate > t.cfg.denial_rate_limit || div > t.cfg.divergence_limit
          then begin
            t.breaches <- t.breaches + 1;
            if t.breaches >= t.cfg.breach_epochs then demote t else Stayed
          end
          else begin
            t.breaches <- 0;
            Stayed
          end
  in
  t.epoch_calls <- 0;
  t.epoch_denied <- 0;
  Array.fill t.epoch_mix 0 categories 0;
  decision

let state t = t.state
let spec t = t.spec
let config t = t.cfg

type stats = {
  epochs : int;
  promotions : int;
  demotions : int;
  respecializations : int;
  last_promote_ns : float option;
  mean_denial_rate : float;
  p95_divergence : float option;
}

let stats (t : t) =
  {
    epochs = t.epochs;
    promotions = t.promotions;
    demotions = t.demotions;
    respecializations = max 0 (t.promotions - 1);
    last_promote_ns = t.last_promote_ns;
    mean_denial_rate =
      (if Welford.count t.denial_rates = 0 then 0.0
       else Welford.mean t.denial_rates);
    p95_divergence = P2.quantile_opt t.divergences;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>epochs            %d@,\
     promotions        %d@,\
     demotions         %d@,\
     respecializations %d@,\
     mean denial rate  %.4f@,\
     p95 divergence    %s@]"
    s.epochs s.promotions s.demotions s.respecializations s.mean_denial_rate
    (match s.p95_divergence with
    | None -> "n/a"
    | Some d -> Printf.sprintf "%.4f" d)
