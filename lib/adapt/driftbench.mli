(** The kadapt dose–response harness: one (policy, dose) cell of the
    drift study.

    A Multikernel deployment serves a file-subsystem workload (the same
    File_io/Fs_mgmt restriction the kspec study pins); a kfault
    [Workload_drift] action fires mid-run and shifts fraction
    [shift = dose * base_shift] of each rank's subsequent programs onto
    the non-file corpus the learned profile never saw.  Three policies
    face the drift:

    - {b static}: the offline kspec path — one Enforce spec compiled
      from the pre-drift corpus, installed forever.  Every post-drift
      novel call is a false-positive ENOSYS.
    - {b audit}: the same allowlist in Audit mode — would-be denials
      are probe-visible but nothing is stopped, and (per the
      mode-aware surface accounting) nothing is reduced.
    - {b adaptive}: a {!Controller} per rank — audit, promote, detect
      the drift, demote, re-learn, re-promote.

    The result tables false-positive ENOSYS rate vs. retained surface
    area vs. time-to-reconverge.  Fully deterministic for a given
    config: per-rank PRNG streams split off one seed, latencies pooled
    in a {!Ksurf_stats.Streamstat}, and the run stops once every rank
    finishes its epochs (kernel background daemons run forever, so the
    engine never drains on its own). *)

type policy = Static | Audit_only | Adaptive

val policy_name : policy -> string
(** ["static"] / ["audit"] / ["adaptive"]. *)

val policy_of_string : string -> policy option
val all_policies : policy list

val base_categories : Ksurf_kernel.Category.t list
(** File_io, Fs_mgmt — what the profile learns. *)

val novel_categories : Ksurf_kernel.Category.t list
(** Ipc, Perm — where the drift moves calls.  Deliberately as narrow
    as the base: drift is a {e shift} to a different small working set,
    not a broadening to the whole syscall table, so a sound re-learned
    allowlist can stay deeply specialized. *)

type config = {
  policy : policy;
  dose : float;  (** scales the plan: shift = dose * base_shift *)
  units : int;
  cores_per_unit : int;  (** ranks = units * cores_per_unit *)
  epochs : int;
  programs_per_epoch : int;
  think_ns : float;  (** idle gap after each program *)
  corpus_programs : int;
  drift_at_ns : float;  (** virtual trigger time of the drift *)
  base_shift : float;
  seed : int;
  controller : Controller.config;
}

val default_config : config

type result = {
  policy : string;
  dose : float;
  ranks : int;
  epochs : int;
  calls : int;
  denied : int;  (** enforced ENOSYS over the whole run *)
  calls_post_drift : int;
  denied_post_drift : int;
  fp_rate : float;
      (** false-positive ENOSYS rate: post-drift denials over post-drift
          calls when the drift fired, whole-run otherwise.  Every denial
          is a false positive — the workload is legitimate. *)
  p99_ns : float;
  surface : float;
      (** epoch-sampled mean functional surface area per rank *)
  surface_full : float;  (** unspecialized baseline *)
  reduction : float;  (** 1 - surface / surface_full *)
  drift_at_ns : float option;  (** when the drift actually fired *)
  reconverge_ns : float option;
      (** drift -> slowest rank's re-promotion; [None] if any rank was
          still auditing at the end (or no drift fired) *)
  promotions : int;
  demotions : int;
  respecializations : int;
  swaps : int;  (** {!Ksurf_env.Env.policy_swaps} *)
  drifts : int;  (** kfault workload-drift injections delivered *)
  mean_denial_rate : float;
      (** controller Welford mean, averaged over ranks *)
  p95_divergence : float;  (** max over ranks of the P² 0.95 estimate *)
}

val run : ?on_engine:(Ksurf_sim.Engine.t -> unit) -> config -> result
(** Run one cell.  [on_engine] is called on the fresh engine before
    deployment, so probes attached there see setup-time policy
    installs. *)

val pp_result : Format.formatter -> result -> unit
