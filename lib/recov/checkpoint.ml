(* Crash-consistent superstep checkpoints.

   The supervisor's complete cross-superstep state — membership, pending
   rejoins, PRNG stream position, accumulated runtime and counters — is
   serialised as a small text file: a versioned header, a whole-payload
   FNV-1a checksum, then one [key value] line per field.  Floats are
   written as the hex of their IEEE-754 bits ([Int64.bits_of_float]) so
   a resumed run is bit-identical to an uninterrupted one, not merely
   close after a decimal round-trip.  Writes go through
   [Fileio.write_atomic] (temp + rename), so a crash mid-checkpoint
   leaves the previous valid checkpoint in place. *)

module Fileio = Ksurf_util.Fileio
module Stable_hash = Ksurf_util.Stable_hash

let magic = "ksurf-checkpoint"
let version = 1

type rejoin = {
  rj_rank : int;
  rj_superstep : int;  (* superstep at which the rank re-enters *)
  rj_incident : int;
  rj_died_at : int;  (* superstep of the death, for catch-up cost *)
}

type state = {
  superstep : int;  (* next superstep to execute *)
  runtime_ns : float;  (* accumulated, barriers included *)
  membership : int list;  (* sorted live ranks *)
  rejoins : rejoin list;
  incidents : int;  (* crash/recovery episodes allocated so far *)
  prng_state : int64;
  prng_seed : int;
  crashes : int;
  restarts : int;
  backups : int;
  deaths : int;
  transitions : int;
  checkpoints : int;
  degraded : bool;
}

let float_bits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

let float_of_bits s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some bits -> Some (Int64.float_of_bits bits)
  | None -> None

let ints_line ns = String.concat "," (List.map string_of_int ns)

let ints_of_line s =
  if String.trim s = "" then Some []
  else
    String.split_on_char ',' s
    |> List.map int_of_string_opt
    |> List.fold_left
         (fun acc x ->
           match (acc, x) with
           | Some acc, Some x -> Some (x :: acc)
           | _ -> None)
         (Some [])
    |> Option.map List.rev

let rejoin_line r =
  Printf.sprintf "%d:%d:%d:%d" r.rj_rank r.rj_superstep r.rj_incident
    r.rj_died_at

let rejoin_of_line s =
  match String.split_on_char ':' s |> List.map int_of_string_opt with
  | [ Some rank; Some step; Some incident; Some died ] ->
      Some
        {
          rj_rank = rank;
          rj_superstep = step;
          rj_incident = incident;
          rj_died_at = died;
        }
  | _ -> None

let payload_lines st =
  [
    Printf.sprintf "superstep %d" st.superstep;
    Printf.sprintf "runtime_bits %s" (float_bits st.runtime_ns);
    Printf.sprintf "membership %s" (ints_line st.membership);
    Printf.sprintf "rejoins %s"
      (String.concat "," (List.map rejoin_line st.rejoins));
    Printf.sprintf "incidents %d" st.incidents;
    Printf.sprintf "prng_state %Lx" st.prng_state;
    Printf.sprintf "prng_seed %d" st.prng_seed;
    Printf.sprintf "crashes %d" st.crashes;
    Printf.sprintf "restarts %d" st.restarts;
    Printf.sprintf "backups %d" st.backups;
    Printf.sprintf "deaths %d" st.deaths;
    Printf.sprintf "transitions %d" st.transitions;
    Printf.sprintf "checkpoints %d" st.checkpoints;
    Printf.sprintf "degraded %b" st.degraded;
  ]

let checksum lines = Stable_hash.string (String.concat "\n" lines)

let write ~path st =
  let payload = payload_lines st in
  Fileio.ensure_dir (Filename.dirname path);
  Fileio.write_atomic ~path (fun oc ->
      Printf.fprintf oc "%s v%d\n" magic version;
      Printf.fprintf oc "checksum %x\n" (checksum payload);
      List.iter (fun l -> output_string oc (l ^ "\n")) payload)

let field fields key = List.assoc_opt key fields

let int_field fields key = Option.bind (field fields key) int_of_string_opt

let read ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such checkpoint")
  else
    match Fileio.read_lines path with
    | exception Fileio.Io_error msg -> Error msg
    | [] -> Error (path ^ ": empty checkpoint")
    | header :: rest -> (
        if header <> Printf.sprintf "%s v%d" magic version then
          Error
            (Printf.sprintf "%s: bad header %S (want %s v%d)" path header
               magic version)
        else
          match rest with
          | [] -> Error (path ^ ": missing checksum")
          | sum_line :: payload -> (
              let declared =
                match String.split_on_char ' ' sum_line with
                | [ "checksum"; hex ] -> int_of_string_opt ("0x" ^ hex)
                | _ -> None
              in
              match declared with
              | None -> Error (path ^ ": malformed checksum line")
              | Some declared when declared <> checksum payload ->
                  Error (path ^ ": checksum mismatch (truncated or corrupt)")
              | Some _ -> (
                  let fields =
                    List.filter_map
                      (fun line ->
                        match String.index_opt line ' ' with
                        | Some i ->
                            Some
                              ( String.sub line 0 i,
                                String.sub line (i + 1)
                                  (String.length line - i - 1) )
                        | None -> Some (line, ""))
                      payload
                  in
                  let ( let* ) o f =
                    match o with
                    | Some v -> f v
                    | None -> Error (path ^ ": missing or malformed field")
                  in
                  let* superstep = int_field fields "superstep" in
                  let* runtime_ns =
                    Option.bind (field fields "runtime_bits") float_of_bits
                  in
                  let* membership =
                    Option.bind (field fields "membership") ints_of_line
                  in
                  let* rejoins =
                    match field fields "rejoins" with
                    | None -> None
                    | Some "" -> Some []
                    | Some s ->
                        String.split_on_char ',' s
                        |> List.map rejoin_of_line
                        |> List.fold_left
                             (fun acc r ->
                               match (acc, r) with
                               | Some acc, Some r -> Some (r :: acc)
                               | _ -> None)
                             (Some [])
                        |> Option.map List.rev
                  in
                  let* incidents = int_field fields "incidents" in
                  let* prng_state =
                    Option.bind (field fields "prng_state") (fun s ->
                        Int64.of_string_opt ("0x" ^ s))
                  in
                  let* prng_seed = int_field fields "prng_seed" in
                  let* crashes = int_field fields "crashes" in
                  let* restarts = int_field fields "restarts" in
                  let* backups = int_field fields "backups" in
                  let* deaths = int_field fields "deaths" in
                  let* transitions = int_field fields "transitions" in
                  let* checkpoints = int_field fields "checkpoints" in
                  let* degraded =
                    Option.bind (field fields "degraded") bool_of_string_opt
                  in
                  Ok
                    {
                      superstep;
                      runtime_ns;
                      membership;
                      rejoins;
                      incidents;
                      prng_state;
                      prng_seed;
                      crashes;
                      restarts;
                      backups;
                      deaths;
                      transitions;
                      checkpoints;
                      degraded;
                    })))
