(* Resumable-sweep journal: a small file recording which cells of an
   experiment sweep have already completed, so [ksurf_cli ... --resume]
   can skip them after a crash.  Cells are free-form string keys (e.g.
   "dose:native:1.5").  Each line carries its own FNV-1a checksum, so a
   line half-written by a dying process is recognised and dropped on
   load instead of poisoning the resume.  Rewrites are atomic
   (temp + rename); the journal is tiny, so rewriting beats appending
   and needing fsync discipline. *)

module Fileio = Ksurf_util.Fileio
module Stable_hash = Ksurf_util.Stable_hash

let magic = "ksurf-journal v1"

type t = { path : string; mutable cells : string list (* reversed *) }

let path t = t.path
let cells t = List.rev t.cells
let mem t key = List.mem key t.cells

let parse_line line =
  (* "cell <hex-checksum> <key>"; the key may itself contain spaces. *)
  match String.split_on_char ' ' line with
  | "cell" :: sum :: rest when rest <> [] ->
      let key = String.concat " " rest in
      let declared = int_of_string_opt ("0x" ^ sum) in
      if declared = Some (Stable_hash.string key) then Some key else None
  | _ -> None

let load ~path =
  if not (Sys.file_exists path) then { path; cells = [] }
  else
    match Fileio.read_lines path with
    | [] -> { path; cells = [] }
    | header :: rest when header = magic ->
        {
          path;
          cells = List.rev (List.filter_map parse_line rest);
        }
    | _ ->
        (* Unrecognised file: treat as empty rather than resuming from
           garbage; the next [record] overwrites it. *)
        { path; cells = [] }

let persist t =
  Fileio.write_atomic ~path:t.path (fun oc ->
      output_string oc (magic ^ "\n");
      List.iter
        (fun key ->
          Printf.fprintf oc "cell %x %s\n" (Stable_hash.string key) key)
        (cells t))

let record t key =
  if not (mem t key) then begin
    t.cells <- key :: t.cells;
    persist t
  end
