(* Resumable-sweep journal: a small file recording which cells of an
   experiment sweep have already completed, so [ksurf_cli ... --resume]
   can skip them after a crash.  Cells are free-form string keys (e.g.
   "dose:native:1.5").  Each line carries its own FNV-1a checksum, so a
   line half-written by a dying process is recognised and dropped on
   load instead of poisoning the resume.  Persists are atomic
   (temp + rename + fsync).

   Membership is a hashtable (O(1) per [record]/[mem]; the original
   [List.mem] made a sweep of n cells O(n^2)), and persists are
   batched: the file is rewritten every [flush_every] newly recorded
   cells and on {!flush} (which sweeps call when they finish), not on
   every [record].  A crash mid-sweep therefore loses at most
   [flush_every - 1] cells — they are simply recomputed on resume; the
   journal is a cache of completed work, never the source of truth.

   A mutex guards all state, making the journal the single funnel
   through which parallel sweep workers (Ksurf_par.Pool) record
   completions: cells complete in nondeterministic order under
   parallelism, but resume semantics are set-membership, so order never
   matters. *)

module Fileio = Ksurf_util.Fileio
module Stable_hash = Ksurf_util.Stable_hash

let magic = "ksurf-journal v1"

let default_flush_every = 8

type t = {
  path : string;
  lock : Mutex.t;
  seen : (string, unit) Hashtbl.t;
  mutable cells_rev : string list;
  mutable unflushed : int;  (* recorded since the last persist *)
  flush_every : int;
  mutable deferred : int;  (* persist attempts that failed with Io_error *)
  mutable last_error : string option;
}

let path t = t.path

let cells t =
  Mutex.lock t.lock;
  let l = List.rev t.cells_rev in
  Mutex.unlock t.lock;
  l

let mem t key =
  Mutex.lock t.lock;
  let hit = Hashtbl.mem t.seen key in
  Mutex.unlock t.lock;
  hit

let parse_line line =
  (* "cell <hex-checksum> <key>"; the key may itself contain spaces. *)
  match String.split_on_char ' ' line with
  | "cell" :: sum :: rest when rest <> [] ->
      let key = String.concat " " rest in
      let declared = int_of_string_opt ("0x" ^ sum) in
      if declared = Some (Stable_hash.string key) then Some key else None
  | _ -> None

let make ?(flush_every = default_flush_every) ~path cells =
  let seen = Hashtbl.create 64 in
  let cells =
    List.filter
      (fun key ->
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      cells
  in
  {
    path;
    lock = Mutex.create ();
    seen;
    cells_rev = List.rev cells;
    unflushed = 0;
    flush_every = max 1 flush_every;
    deferred = 0;
    last_error = None;
  }

let load ?flush_every ~path () =
  if not (Sys.file_exists path) then make ?flush_every ~path []
  else
    match Fileio.read_lines path with
    | [] -> make ?flush_every ~path []
    | header :: rest when header = magic ->
        make ?flush_every ~path (List.filter_map parse_line rest)
    | _ ->
        (* Unrecognised file: treat as empty rather than resuming from
           garbage; the next persist overwrites it. *)
        make ?flush_every ~path []

(* Caller holds [t.lock].  An [Io_error] (disk full, directory gone)
   does NOT abort the sweep: the cells stay buffered in memory, the
   failure is counted as deferred, and every subsequent [record] (and
   the final [flush]) retries the persist — so when space clears the
   journal catches up, and when it never does the completed work is
   still returned to the caller, which reports a stamped degraded
   result instead of losing it.  A simulated crash (Iohook.Crashed) is
   not an I/O error and still propagates. *)
let persist_locked t =
  match
    Fileio.write_atomic ~path:t.path (fun oc ->
        output_string oc (magic ^ "\n");
        List.iter
          (fun key ->
            Printf.fprintf oc "cell %x %s\n" (Stable_hash.string key) key)
          (List.rev t.cells_rev))
  with
  | () ->
      t.unflushed <- 0;
      t.last_error <- None
  | exception Fileio.Io_error msg ->
      t.deferred <- t.deferred + 1;
      t.last_error <- Some msg

let flush t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> if t.unflushed > 0 then persist_locked t)

let persist_pending t =
  Mutex.lock t.lock;
  let pending = t.unflushed > 0 in
  Mutex.unlock t.lock;
  pending

let deferred t =
  Mutex.lock t.lock;
  let n = t.deferred in
  Mutex.unlock t.lock;
  n

let last_error t =
  Mutex.lock t.lock;
  let e = t.last_error in
  Mutex.unlock t.lock;
  e

let record t key =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not (Hashtbl.mem t.seen key) then begin
        Hashtbl.add t.seen key ();
        t.cells_rev <- key :: t.cells_rev;
        t.unflushed <- t.unflushed + 1;
        if t.unflushed >= t.flush_every then persist_locked t
      end)
