(** Crash-consistent superstep checkpoints for the BSP supervisor.

    A checkpoint is the supervisor's {e complete} cross-superstep state:
    everything the superstep loop reads that outlives one superstep.
    Restoring it and re-running is therefore bit-identical to never
    having stopped — the property [test_recov.ml] kills runs at several
    supersteps to verify.

    On disk: a versioned header, an FNV-1a checksum of the payload, and
    one [key value] line per field, with floats as IEEE-754 bit
    patterns in hex.  Written via {!Ksurf_util.Fileio.write_atomic}, so
    a crash mid-write cannot corrupt the previous checkpoint. *)

type rejoin = {
  rj_rank : int;
  rj_superstep : int;  (** superstep at which the rank re-enters *)
  rj_incident : int;  (** episode id, threaded into probe events *)
  rj_died_at : int;  (** superstep of the death, for catch-up cost *)
}

type state = {
  superstep : int;  (** next superstep to execute *)
  runtime_ns : float;  (** accumulated runtime, barriers included *)
  membership : int list;  (** sorted live ranks *)
  rejoins : rejoin list;  (** restarted ranks awaiting re-admission *)
  incidents : int;  (** crash/recovery episodes allocated so far *)
  prng_state : int64;  (** supervisor stream position… *)
  prng_seed : int;  (** …and seed ({!Ksurf_util.Prng.restore}) *)
  crashes : int;
  restarts : int;
  backups : int;
  deaths : int;
  transitions : int;
  checkpoints : int;  (** checkpoints written so far, this one included *)
  degraded : bool;
}

val write : path:string -> state -> unit
(** Atomic write; raises {!Ksurf_util.Fileio.Io_error} on I/O failure. *)

val read : path:string -> (state, string) result
(** Parse and verify (header, checksum, every field).  All corruption
    modes return [Error] with a description; nothing raises. *)
