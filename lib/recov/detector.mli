(** Phi-accrual failure detection over virtual-time heartbeats.

    Each monitored rank accrues a suspicion level
    [phi = silence / (mean_interval * ln 10)] — the exponential-arrival
    form of Hayashibara's accrual detector — against a windowed estimate
    of its heartbeat inter-arrival time.  Two thresholds split phi into
    three states: [Alive] below [suspect_phi], [Suspect] between,
    [Dead] above [dead_phi].  Phi is continuous and strictly monotone
    in silence, so detection latency is a deterministic function of the
    heartbeat history — property-tested in [test_recov.ml].

    [Dead] is sticky: only an explicit {!revive} (a supervisor decision,
    e.g. a restarted rank re-admitted after catch-up) returns a rank to
    [Alive]. *)

type verdict = Alive | Suspect | Dead

val verdict_name : verdict -> string
(** ["alive"], ["suspect"], ["dead"] — the strings carried by
    [Engine.Rank_transition] probe events. *)

type config = {
  window : int;  (** inter-arrival samples kept per rank *)
  bootstrap_interval_ns : float;
      (** assumed mean inter-arrival before any samples exist *)
  min_interval_ns : float;  (** floor on the mean estimate *)
  suspect_phi : float;
  dead_phi : float;
}

val default_config : config

type t

val create : ?config:config -> now:float -> ranks:int list -> unit -> t
(** Fresh detector; every rank starts [Alive] with its last-heartbeat
    time set to [now]. *)

val heartbeat : t -> rank:int -> now:float -> unit
(** Record a heartbeat: fold the inter-arrival into the window. *)

val phi : t -> rank:int -> now:float -> float
(** Current suspicion level of [rank] at time [now]. *)

val evaluate : t -> now:float -> (int * verdict * verdict) list
(** Re-evaluate every monitored rank; apply and return the transitions
    as [(rank, from, to)], in rank order (deterministic). *)

val state : t -> rank:int -> verdict
val retire : t -> rank:int -> unit
(** Stop monitoring a rank that finished its work legitimately — a
    departed rank must not accrue suspicion. *)

val revive : t -> rank:int -> now:float -> unit
(** Supervisor decision: return a (typically Dead) rank to [Alive] with
    a cleared window. *)

type rank_snapshot = {
  snap_rank : int;
  snap_intervals : float list;
  snap_last : float;
  snap_state : verdict;
  snap_monitored : bool;
}

val save : t -> rank_snapshot list
val restore : ?config:config -> rank_snapshot list -> t
(** Checkpoint support: {!restore} of a {!save} resumes detection
    bit-identically. *)
