(** Resumable-sweep journal.

    Records completed sweep cells (free-form string keys) so an
    interrupted experiment re-run with [--resume] skips work already
    done.  Every line is checksummed individually — a torn write from a
    dying process is dropped on load, not resumed from.  All writes are
    atomic (temp + fsync + rename) and raise
    {!Ksurf_util.Fileio.Io_error} on file-system trouble.

    Membership is O(1) (hashtable, not a list scan), and persists are
    batched: the file is rewritten once every [flush_every] newly
    recorded cells and on {!flush}, not on every {!record}.  A crash
    between persists loses at most [flush_every - 1] cells, which are
    simply recomputed on resume — the journal is a cache of completed
    work, never the source of truth.

    All operations are thread-safe (internal mutex), so a journal can
    serve as the single write funnel for parallel sweep workers. *)

type t

val default_flush_every : int
(** Persist cadence used when [load] is not given [?flush_every]. *)

val load : ?flush_every:int -> path:string -> unit -> t
(** Load a journal; a missing, empty or unrecognisable file yields an
    empty journal at that path.  Corrupt lines are silently dropped.
    [flush_every] (default {!default_flush_every}, clamped to [>= 1])
    sets how many newly recorded cells accumulate before the file is
    rewritten. *)

val record : t -> string -> unit
(** Mark a cell complete.  Idempotent per key.  Persists to disk only
    when the batch threshold is reached; call {!flush} to force. *)

val flush : t -> unit
(** Persist any recorded-but-unwritten cells now.  No-op when clean.
    Sweeps call this when they finish (and periodically mid-sweep via
    the batch threshold).

    Neither {!record} nor {!flush} raises on file-system trouble: a
    failed persist (ENOSPC, directory gone) keeps the cells buffered in
    memory and is retried by every subsequent persist attempt — the
    sweep keeps computing and no completed cell is ever lost to a full
    disk.  Check {!persist_pending} after the final flush: if it is
    still true the caller should report a degraded result (the CLI
    exits 3). *)

val persist_pending : t -> bool
(** Are there recorded cells not yet safely on disk?  True after a
    persist failure until a retry succeeds. *)

val deferred : t -> int
(** How many persist attempts failed (and were deferred) so far. *)

val last_error : t -> string option
(** The most recent persist failure, if the journal is still dirty
    because of one. *)

val mem : t -> string -> bool
(** Has this cell already completed? *)

val cells : t -> string list
(** Completed cells in completion order. *)

val path : t -> string
