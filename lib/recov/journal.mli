(** Resumable-sweep journal.

    Records completed sweep cells (free-form string keys) so an
    interrupted experiment re-run with [--resume] skips work already
    done.  Every line is checksummed individually — a torn write from a
    dying process is dropped on load, not resumed from.  All writes are
    atomic (temp + rename) and raise {!Ksurf_util.Fileio.Io_error} on
    file-system trouble. *)

type t

val load : path:string -> t
(** Load a journal; a missing, empty or unrecognisable file yields an
    empty journal at that path.  Corrupt lines are silently dropped. *)

val record : t -> string -> unit
(** Mark a cell complete and persist.  Idempotent per key. *)

val mem : t -> string -> bool
(** Has this cell already completed? *)

val cells : t -> string list
(** Completed cells in completion order. *)

val path : t -> string
