(* Phi-accrual failure detection (Hayashibara et al., SRDS'04), the
   shape Cassandra and Akka ship: instead of a boolean timeout, each
   rank accrues a suspicion level phi = -log10 P(the rank is alive given
   its silence), computed against a windowed estimate of its heartbeat
   inter-arrival time.  Under the exponential-arrival assumption
   P(silence > t) = exp(-t / mean), so

       phi(t) = t_silence / (mean_interval * ln 10)

   which is continuous and strictly monotone in silence — thresholds
   pick the trade-off between detection latency and false suspicion.
   Two thresholds give three states: Alive below [suspect_phi], Suspect
   between, Dead above [dead_phi].  Dead is sticky: revival is an
   explicit supervisor decision ({!revive}), never inferred. *)

type verdict = Alive | Suspect | Dead

let verdict_name = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

type config = {
  window : int;  (* inter-arrival samples kept per rank *)
  bootstrap_interval_ns : float;  (* assumed mean before samples exist *)
  min_interval_ns : float;  (* floor on the mean estimate *)
  suspect_phi : float;
  dead_phi : float;
}

let default_config =
  {
    window = 8;
    bootstrap_interval_ns = 1.0e5;
    min_interval_ns = 1.0;
    suspect_phi = 1.0;
    dead_phi = 4.0;
  }

type rank_state = {
  rank : int;
  mutable intervals : float list;  (* most recent first, length <= window *)
  mutable interval_count : int;
  mutable last : float;  (* last heartbeat time *)
  mutable state : verdict;
  mutable monitored : bool;
}

type t = {
  config : config;
  ranks : rank_state list;  (* sorted by rank: evaluation order is fixed *)
}

let create ?(config = default_config) ~now ~ranks () =
  if config.window < 1 then invalid_arg "Detector.create: window < 1";
  if config.dead_phi < config.suspect_phi then
    invalid_arg "Detector.create: dead_phi < suspect_phi";
  let ranks = List.sort_uniq compare ranks in
  {
    config;
    ranks =
      List.map
        (fun rank ->
          {
            rank;
            intervals = [];
            interval_count = 0;
            last = now;
            state = Alive;
            monitored = true;
          })
        ranks;
  }

let find t rank =
  match List.find_opt (fun r -> r.rank = rank) t.ranks with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Detector: unknown rank %d" rank)

let heartbeat t ~rank ~now =
  let r = find t rank in
  let interval = now -. r.last in
  if interval > 0.0 then begin
    let kept =
      if r.interval_count >= t.config.window then
        List.filteri (fun i _ -> i < t.config.window - 1) r.intervals
      else r.intervals
    in
    r.intervals <- interval :: kept;
    r.interval_count <- min (r.interval_count + 1) t.config.window
  end;
  r.last <- now

let mean_interval t r =
  match r.intervals with
  | [] -> Float.max t.config.bootstrap_interval_ns t.config.min_interval_ns
  | is ->
      let sum = List.fold_left ( +. ) 0.0 is in
      Float.max (sum /. float_of_int (List.length is)) t.config.min_interval_ns

let ln10 = Float.log 10.0

let phi_of t r ~now =
  let silence = Float.max 0.0 (now -. r.last) in
  silence /. (mean_interval t r *. ln10)

let phi t ~rank ~now = phi_of t (find t rank) ~now
let state t ~rank = (find t rank).state
let retire t ~rank = (find t rank).monitored <- false

let revive t ~rank ~now =
  let r = find t rank in
  r.state <- Alive;
  r.intervals <- [];
  r.interval_count <- 0;
  r.last <- now;
  r.monitored <- true

(* Re-evaluate every monitored rank at [now]; apply and return the
   state changes in rank order.  Dead is terminal here — a heartbeat
   from a Dead rank is history's problem, not the detector's. *)
let evaluate t ~now =
  List.filter_map
    (fun r ->
      if not r.monitored then None
      else
        let p = phi_of t r ~now in
        let next =
          match r.state with
          | Alive when p >= t.config.suspect_phi -> Suspect
          | Suspect when p >= t.config.dead_phi -> Dead
          | Suspect when p < t.config.suspect_phi -> Alive
          | s -> s
        in
        if next = r.state then None
        else begin
          let prev = r.state in
          r.state <- next;
          Some (r.rank, prev, next)
        end)
    t.ranks

type rank_snapshot = {
  snap_rank : int;
  snap_intervals : float list;
  snap_last : float;
  snap_state : verdict;
  snap_monitored : bool;
}

let save t =
  List.map
    (fun r ->
      {
        snap_rank = r.rank;
        snap_intervals = r.intervals;
        snap_last = r.last;
        snap_state = r.state;
        snap_monitored = r.monitored;
      })
    t.ranks

let restore ?(config = default_config) snaps =
  {
    config;
    ranks =
      List.map
        (fun s ->
          {
            rank = s.snap_rank;
            intervals = s.snap_intervals;
            interval_count = List.length s.snap_intervals;
            last = s.snap_last;
            state = s.snap_state;
            monitored = s.snap_monitored;
          })
        (List.sort (fun a b -> compare a.snap_rank b.snap_rank) snaps);
  }
