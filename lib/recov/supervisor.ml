(* The BSP supervision loop: an elastic-membership, checkpointed
   re-synthesis of the 64-node run.

   Where [Cluster.run] collapses all iterations into one closed-form
   order statistic, the supervisor replays them superstep by superstep
   on a discrete-event engine: each live rank draws its iteration
   duration from the empirical pool, emits heartbeats in virtual time,
   and a monitor drives the phi-accrual detector.  That is what makes
   failures *mechanistic* rather than assumed — a crashed rank simply
   falls silent, suspicion accrues, and the recovery policy decides what
   the barrier waits for:

     Disabled     nothing recovers; a permanent crash wedges the
                  superstep and the engine watchdog converts the hang
                  into a diagnostic [Engine.Hung] abort.
     Survivors    a Dead verdict removes the rank; later supersteps
                  draw over the shrunken membership (degraded mode).
     Readmit      the rank restarts and re-enters after a configurable
                  downtime, paying a catch-up cost proportional to the
                  supersteps it missed.
     Speculative  a Suspect verdict immediately launches a backup
                  execution of the iteration; the rank completes at the
                  first finisher.

   Determinism discipline: every random draw (durations, backup
   durations, crash rolls) is taken from one supervisor PRNG stream in
   sorted-rank order *before* the superstep engine runs, so event
   interleavings never feed back into the stream.  All cross-superstep
   state lives in a [Checkpoint.state] record; each superstep runs on a
   fresh engine whose virtual time starts at 0.  Kill the process after
   any superstep, restore the last checkpoint, and the remaining
   supersteps re-execute bit-identically. *)

module Engine = Ksurf_sim.Engine
module Prng = Ksurf_util.Prng
module Plan = Ksurf_fault.Plan

type policy = Disabled | Survivors | Readmit | Speculative

let all_policies = [ Disabled; Survivors; Readmit; Speculative ]

let policy_name = function
  | Disabled -> "disabled"
  | Survivors -> "survivors"
  | Readmit -> "readmit"
  | Speculative -> "speculative"

let policy_of_string = function
  | "disabled" -> Some Disabled
  | "survivors" -> Some Survivors
  | "readmit" -> Some Readmit
  | "speculative" -> Some Speculative
  | _ -> None

type config = {
  nodes : int;
  iterations : int;  (* supersteps *)
  barrier_cost_ns : float;
  heartbeat_interval_ns : float;
  detector : Detector.config;
  policy : policy;
  crash_rate : float;  (* per-rank per-superstep crash probability *)
  restart_supersteps : int;  (* readmit downtime, in supersteps *)
  catchup_factor : float;
      (* readmit: rejoin duration penalty per missed superstep,
         in units of the pool mean *)
  checkpoint_interval : int;  (* supersteps between checkpoints *)
  checkpoint_path : string option;
  deadline_factor : float;  (* watchdog slack over the worst-case step *)
  seed : int;
}

let default_config =
  {
    nodes = 64;
    iterations = 50;
    barrier_cost_ns = 1_800.0 *. 6.0;
    heartbeat_interval_ns = 1.0e5;
    detector = Detector.default_config;
    policy = Survivors;
    crash_rate = 0.0;
    restart_supersteps = 1;
    catchup_factor = 0.5;
    checkpoint_interval = 5;
    checkpoint_path = None;
    deadline_factor = 8.0;
    seed = 42;
  }

type crash = { crash_rank : int; crash_superstep : int; crash_restart : bool }

(* Project a kfault plan's Rank_crash actions onto superstep indices:
   virtual crash times divide by the expected superstep length.  This is
   how the "crashy" preset reaches the supervisor. *)
let crashes_of_plan (plan : Plan.t) ~est_superstep_ns =
  if est_superstep_ns <= 0.0 then
    invalid_arg "Supervisor.crashes_of_plan: non-positive superstep estimate";
  List.filter_map
    (function
      | Plan.Rank_crash { Plan.rank; at_ns; restart_after_ns } ->
          Some
            {
              crash_rank = rank;
              crash_superstep = int_of_float (at_ns /. est_superstep_ns);
              crash_restart = restart_after_ns <> None;
            }
      | _ -> None)
    plan.Plan.actions

type outcome = {
  policy : string;
  nodes : int;
  supersteps : int;  (* completed; < iterations after a kill *)
  runtime_ns : float;
  straggler_factor : float;  (* mean superstep / mean pool iteration *)
  survivors : int;
  degraded : bool;
  crashes : int;
  restarts : int;
  backups : int;
  deaths : int;
  transitions : int;
  checkpoints : int;
  resumed_from : int;  (* superstep the run started at; 0 = fresh *)
}

(* One superstep on a fresh engine.  Returns the updated state. *)
let superstep ~config ~pool ~mean_pool ~planned ~rng ~on_engine
    (st : Checkpoint.state) =
  let s = st.superstep in
  let hb = config.heartbeat_interval_ns in
  (* Re-admit restarted ranks whose downtime has elapsed. *)
  let ready, waiting =
    List.partition
      (fun (r : Checkpoint.rejoin) -> r.Checkpoint.rj_superstep <= s)
      st.rejoins
  in
  let ready =
    List.sort (fun a b -> compare a.Checkpoint.rj_rank b.Checkpoint.rj_rank) ready
  in
  let membership =
    List.sort_uniq compare
      (st.membership @ List.map (fun r -> r.Checkpoint.rj_rank) ready)
  in
  if membership = [] then failwith "Supervisor: no live ranks remain";
  let restarts = ref st.restarts in
  let transitions = ref st.transitions in
  let n = Array.length pool in
  (* All randomness for the superstep, drawn up front in rank order. *)
  let draws =
    List.map
      (fun rank ->
        let d = pool.(Prng.int rng n) in
        let backup = pool.(Prng.int rng n) in
        let rolled = Prng.chance rng config.crash_rate in
        let frac = 0.05 +. (0.9 *. Prng.uniform rng) in
        let catchup =
          match
            List.find_opt (fun r -> r.Checkpoint.rj_rank = rank) ready
          with
          | Some r ->
              config.catchup_factor
              *. float_of_int (s - r.Checkpoint.rj_died_at)
              *. mean_pool
          | None -> 0.0
        in
        let from_plan =
          List.find_opt
            (fun c -> c.crash_rank = rank && c.crash_superstep = s)
            planned
        in
        let crashed, restartable =
          match from_plan with
          | Some c -> (true, c.crash_restart)
          | None -> (rolled, config.policy = Readmit)
        in
        (rank, d +. catchup, backup, crashed, restartable, frac))
      membership
  in
  let engine = Engine.create ~seed:(config.seed + s) () in
  on_engine engine;
  let emit_transition ~now ~pid ~rank ~from_v ~to_v ~incident =
    incr transitions;
    if Engine.observed engine then
      Engine.emit engine
        (Engine.Rank_transition
           {
             now;
             pid;
             rank;
             from_state = Detector.verdict_name from_v;
             to_state = Detector.verdict_name to_v;
             incident;
           })
  in
  (* Rejoin transitions close the incident opened at the crash. *)
  List.iter
    (fun (r : Checkpoint.rejoin) ->
      incr restarts;
      emit_transition ~now:0.0 ~pid:0 ~rank:r.Checkpoint.rj_rank
        ~from_v:Detector.Dead ~to_v:Detector.Alive
        ~incident:r.Checkpoint.rj_incident)
    ready;
  let det =
    Detector.create ~config:config.detector ~now:0.0 ~ranks:membership ()
  in
  let remaining = ref (List.length membership) in
  let superstep_end = ref 0.0 in
  let finished = ref false in
  let complete_one () =
    decr remaining;
    if !remaining <= 0 then begin
      superstep_end := Engine.now engine;
      finished := true
    end
  in
  let crashes = ref st.crashes in
  let deaths = ref st.deaths in
  let backups = ref st.backups in
  let incidents = ref st.incidents in
  let incident_of_rank = Hashtbl.create 8 in
  let died_permanent = ref [] in
  let died_rejoin = ref [] in
  let takeovers = ref [] in
  (* Per-rank worker: heartbeat every interval until it finishes its
     iteration — or crashes, after which it falls silent forever and the
     detector takes over. *)
  List.iter
    (fun (rank, d, _backup, crashed, _restartable, frac) ->
      Engine.spawn engine (fun () ->
          let stop_at = if crashed then frac *. d else d in
          let rec loop () =
            let now = Engine.now engine in
            if now +. hb < stop_at then begin
              Engine.delay hb;
              Detector.heartbeat det ~rank ~now:(Engine.now engine);
              loop ()
            end
            else begin
              Engine.delay (Float.max 0.0 (stop_at -. now));
              if crashed then begin
                incr crashes;
                if Engine.observed engine then
                  Engine.emit engine
                    (Engine.Injected
                       {
                         now = Engine.now engine;
                         pid = Engine.current_pid engine;
                         fault = "rank-crash";
                         magnitude = float_of_int rank;
                       })
                (* no further heartbeats: silence is the crash signal *)
              end
              else begin
                Detector.retire det ~rank;
                complete_one ()
              end
            end
          in
          loop ()))
    draws;
  let incident_for rank =
    match Hashtbl.find_opt incident_of_rank rank with
    | Some i -> i
    | None ->
        let i = !incidents in
        incr incidents;
        Hashtbl.add incident_of_rank rank i;
        i
  in
  (* Monitor: poll the detector at twice the heartbeat rate, emit every
     transition, and apply the recovery policy on verdicts.  It also
     keeps the event heap populated, so a wedged superstep marches
     virtual time into the watchdog deadline instead of draining. *)
  Engine.spawn engine (fun () ->
      let rec loop () =
        if not !finished then begin
          Engine.delay (hb /. 2.0);
          let now = Engine.now engine in
          List.iter
            (fun (rank, from_v, to_v) ->
              let incident = incident_for rank in
              emit_transition ~now ~pid:(Engine.current_pid engine) ~rank
                ~from_v ~to_v ~incident;
              match to_v with
              | Detector.Suspect ->
                  if config.policy = Speculative then begin
                    let _, _, backup, _, _, _ =
                      List.find (fun (r, _, _, _, _, _) -> r = rank) draws
                    in
                    incr backups;
                    takeovers := (rank, incident) :: !takeovers;
                    Engine.spawn engine (fun () ->
                        Engine.delay backup;
                        complete_one ())
                  end
              | Detector.Dead -> (
                  incr deaths;
                  match config.policy with
                  | Disabled | Speculative -> ()
                  | Survivors ->
                      died_permanent := (rank, incident) :: !died_permanent;
                      complete_one ()
                  | Readmit ->
                      let _, _, _, _, restartable, _ =
                        List.find (fun (r, _, _, _, _, _) -> r = rank) draws
                      in
                      if restartable then
                        died_rejoin := (rank, incident) :: !died_rejoin
                      else died_permanent := (rank, incident) :: !died_permanent;
                      complete_one ())
              | Detector.Alive -> ())
            (Detector.evaluate det ~now);
          loop ()
        end
      in
      loop ());
  (* Watchdog: the worst legitimate superstep is bounded by the longest
     draw (plus a backup execution and the detection horizon); anything
     beyond the slack factor is a wedge and must abort, not spin. *)
  let worst_draw =
    List.fold_left (fun acc (_, d, b, _, _, _) -> Float.max acc (d +. b)) 0.0
      draws
  in
  let detection_horizon =
    config.detector.Detector.dead_phi *. Float.log 10.0 *. hb *. 3.0
  in
  let deadline =
    config.deadline_factor *. (worst_draw +. detection_horizon +. (4.0 *. hb))
  in
  Engine.run ~stop:(fun () -> !finished) ~deadline engine;
  (* Speculative takeovers leave the original rank Suspect or Dead in
     the detector; close the incident so the rank re-enters the next
     superstep Alive — the probe stream shows a full
     suspect -> [dead ->] alive episode. *)
  List.iter
    (fun (rank, incident) ->
      match Detector.state det ~rank with
      | Detector.Alive -> ()
      | v ->
          emit_transition ~now:!superstep_end ~pid:0 ~rank ~from_v:v
            ~to_v:Detector.Alive ~incident)
    (List.sort compare !takeovers);
  let died_permanent = List.sort compare !died_permanent in
  let died_rejoin = List.sort compare !died_rejoin in
  let gone = List.map fst died_permanent @ List.map fst died_rejoin in
  let membership' = List.filter (fun r -> not (List.mem r gone)) membership in
  let new_rejoins =
    List.map
      (fun (rank, incident) ->
        {
          Checkpoint.rj_rank = rank;
          rj_superstep = s + 1 + config.restart_supersteps;
          rj_incident = incident;
          rj_died_at = s;
        })
      died_rejoin
  in
  let prng_state, prng_seed = Prng.save rng in
  {
    st with
    Checkpoint.superstep = s + 1;
    runtime_ns = st.runtime_ns +. !superstep_end +. config.barrier_cost_ns;
    membership = membership';
    rejoins = waiting @ new_rejoins;
    incidents = !incidents;
    prng_state;
    prng_seed;
    crashes = !crashes;
    restarts = !restarts;
    backups = !backups;
    deaths = !deaths;
    transitions = !transitions;
    degraded = st.degraded || died_permanent <> [];
  }

let mean arr = Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr)

let fresh_state ~config =
  let rng = Prng.split (Prng.create config.seed) "recov-supervisor" in
  let prng_state, prng_seed = Prng.save rng in
  {
    Checkpoint.superstep = 0;
    runtime_ns = 0.0;
    membership = List.init config.nodes (fun i -> i);
    rejoins = [];
    incidents = 0;
    prng_state;
    prng_seed;
    crashes = 0;
    restarts = 0;
    backups = 0;
    deaths = 0;
    transitions = 0;
    checkpoints = 0;
    degraded = false;
  }

let run ~pool ?(config = default_config) ?plan ?resume_from ?kill_after
    ?(on_engine = fun (_ : Engine.t) -> ()) () =
  if Array.length pool = 0 then invalid_arg "Supervisor.run: empty pool";
  if config.nodes < 1 then invalid_arg "Supervisor.run: need >= 1 node";
  if config.checkpoint_interval < 1 then
    invalid_arg "Supervisor.run: checkpoint_interval < 1";
  let mean_pool = mean pool in
  let planned =
    match plan with
    | None -> []
    | Some p ->
        crashes_of_plan p
          ~est_superstep_ns:(mean_pool +. config.barrier_cost_ns)
  in
  let st, resumed_from =
    match resume_from with
    | Some path when Sys.file_exists path -> (
        match Checkpoint.read ~path with
        | Ok st -> (st, st.Checkpoint.superstep)
        | Error msg -> failwith ("Supervisor.run: " ^ msg))
    | Some _ | None -> (fresh_state ~config, 0)
  in
  let st = ref st in
  let rng =
    Prng.restore ~state:!st.Checkpoint.prng_state
      ~seed:!st.Checkpoint.prng_seed
  in
  let executed = ref 0 in
  let killed = ref false in
  while (not !killed) && !st.Checkpoint.superstep < config.iterations do
    st :=
      superstep ~config ~pool ~mean_pool ~planned ~rng ~on_engine !st;
    (* Re-seed the working stream position into the state record only at
       checkpoint boundaries is not enough: [superstep] already saved
       the stream, so [!st] is always complete.  Persist on interval. *)
    (match config.checkpoint_path with
    | Some path
      when !st.Checkpoint.superstep mod config.checkpoint_interval = 0
           || !st.Checkpoint.superstep >= config.iterations ->
        st := { !st with Checkpoint.checkpoints = !st.Checkpoint.checkpoints + 1 };
        Checkpoint.write ~path !st
    | _ -> ());
    incr executed;
    match kill_after with
    | Some k when !executed >= k -> killed := true
    | _ -> ()
  done;
  let s = !st in
  let steps = s.Checkpoint.superstep in
  let straggler_factor =
    if steps = 0 then 0.0
    else
      ((s.Checkpoint.runtime_ns /. float_of_int steps) -. config.barrier_cost_ns)
      /. mean_pool
  in
  {
    policy = policy_name config.policy;
    nodes = config.nodes;
    supersteps = steps;
    runtime_ns = s.Checkpoint.runtime_ns;
    straggler_factor;
    survivors = List.length s.Checkpoint.membership;
    degraded = s.Checkpoint.degraded;
    crashes = s.Checkpoint.crashes;
    restarts = s.Checkpoint.restarts;
    backups = s.Checkpoint.backups;
    deaths = s.Checkpoint.deaths;
    transitions = s.Checkpoint.transitions;
    checkpoints = s.Checkpoint.checkpoints;
    resumed_from;
  }
