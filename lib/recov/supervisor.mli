(** Elastic BSP supervision: superstep-by-superstep re-synthesis of the
    64-node run with heartbeats, phi-accrual failure detection, recovery
    policies, and crash-consistent checkpointing.

    Each superstep runs on a fresh engine: every live rank draws its
    iteration duration from the empirical pool, heartbeats in virtual
    time, and either finishes (retiring from the detector) or crashes
    and falls silent.  A monitor polls the detector, emits every verdict
    change as an [Engine.Rank_transition] probe event, and applies the
    configured policy.  All cross-superstep state is a
    {!Checkpoint.state} record, so a run killed after any superstep and
    resumed from its last checkpoint re-executes bit-identically. *)

type policy =
  | Disabled
      (** no recovery: a permanent crash wedges the barrier, and the
          engine liveness watchdog aborts with [Engine.Hung] *)
  | Survivors
      (** Dead ranks leave the membership; later supersteps run
          degraded over the survivors *)
  | Readmit
      (** Dead ranks restart and re-enter after a downtime, paying a
          catch-up cost proportional to the supersteps missed *)
  | Speculative
      (** a Suspect verdict launches a backup execution; the rank
          completes at the first finisher *)

val all_policies : policy list
val policy_name : policy -> string
val policy_of_string : string -> policy option

type config = {
  nodes : int;
  iterations : int;  (** supersteps *)
  barrier_cost_ns : float;
  heartbeat_interval_ns : float;
  detector : Detector.config;
  policy : policy;
  crash_rate : float;  (** per-rank per-superstep crash probability *)
  restart_supersteps : int;  (** readmit downtime, in supersteps *)
  catchup_factor : float;
      (** readmit: rejoin penalty per missed superstep, × pool mean *)
  checkpoint_interval : int;  (** supersteps between checkpoints *)
  checkpoint_path : string option;
  deadline_factor : float;  (** watchdog slack over the worst-case step *)
  seed : int;
}

val default_config : config
(** 64 nodes, 50 supersteps, Survivors policy, no crashes, checkpoint
    every 5 supersteps (when a path is given). *)

type crash = { crash_rank : int; crash_superstep : int; crash_restart : bool }

val crashes_of_plan :
  Ksurf_fault.Plan.t -> est_superstep_ns:float -> crash list
(** Project a kfault plan's [Rank_crash] actions onto superstep indices
    by the expected superstep length — the bridge from the "crashy"
    preset to the supervisor. *)

type outcome = {
  policy : string;
  nodes : int;
  supersteps : int;  (** completed; < iterations after a kill *)
  runtime_ns : float;
  straggler_factor : float;  (** mean superstep / mean pool iteration *)
  survivors : int;
  degraded : bool;
  crashes : int;
  restarts : int;
  backups : int;
  deaths : int;
  transitions : int;  (** rank-transition probe events emitted *)
  checkpoints : int;
  resumed_from : int;  (** superstep the run started at; 0 = fresh *)
}

val run :
  pool:float array ->
  ?config:config ->
  ?plan:Ksurf_fault.Plan.t ->
  ?resume_from:string ->
  ?kill_after:int ->
  ?on_engine:(Ksurf_sim.Engine.t -> unit) ->
  unit ->
  outcome
(** Run the supervised BSP synthesis over an empirical iteration pool.

    [plan] injects its [Rank_crash] actions; [config.crash_rate] adds
    seed-deterministic random crashes on top.  [resume_from] loads a
    checkpoint (a missing file starts fresh; a corrupt one fails
    loudly).  [kill_after] stops after that many supersteps of {e this}
    invocation — the test hook for kill-and-resume properties.
    [on_engine] is called on each superstep engine before it runs, so
    sanitizers can attach probes.

    Raises [Engine.Hung] when a superstep wedges (e.g. a permanent
    crash under [Disabled]) — the watchdog converts the infinite wait
    into a diagnostic abort. *)
