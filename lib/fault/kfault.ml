module Engine = Ksurf_sim.Engine
module Instance = Ksurf_kernel.Instance
module Category = Ksurf_kernel.Category
module Spec = Ksurf_syscalls.Spec
module Env = Ksurf_env.Env
module Prng = Ksurf_util.Prng

type stats = {
  syscall_faults : int;
  lock_preemptions : int;
  device_stalls : int;
  daemon_storm_passes : int;
  ipi_storms : int;
  cache_flushes : int;
  slow_memory_windows : int;
  crashes_scheduled : int;
  workload_drifts : int;
}

type counters = {
  mutable c_syscall : int;
  mutable c_preempt : int;
  mutable c_stall : int;
  mutable c_daemon : int;
  mutable c_ipi : int;
  mutable c_flush : int;
  mutable c_slowmem : int;
  c_crashes : int;
  mutable c_drift : int;
}

type t = {
  env : Env.t;
  the_plan : Plan.t;
  counters : counters;
  mutable active : bool;
  mutable drift_sink : (shift:float -> unit) option;
}

(* Same class rule as ksan's lockdep ("k3.inode[7]" -> "inode"), kept
   local because the dependency points the other way: analysis depends
   on fault, not vice versa. *)
let class_of_lock name =
  let after_prefix =
    match String.index_opt name '.' with
    | Some dot when dot >= 2 && name.[0] = 'k' ->
        let digits = ref true in
        String.iteri
          (fun i c ->
            if i > 0 && i < dot && not ('0' <= c && c <= '9') then digits := false)
          name;
        if !digits then String.sub name (dot + 1) (String.length name - dot - 1)
        else name
    | _ -> name
  in
  match String.index_opt after_prefix '[' with
  | Some bracket
    when String.length after_prefix > 0
         && after_prefix.[String.length after_prefix - 1] = ']' ->
      String.sub after_prefix 0 bracket
  | _ -> after_prefix

let inject engine fault magnitude =
  if Engine.observed engine then
    Engine.emit engine
      (Engine.Injected
         {
           now = Engine.now engine;
           pid = Engine.current_pid engine;
           fault;
           magnitude;
         })

(* --- plan decomposition ----------------------------------------------- *)

let category_rates actions =
  let rates = Array.make 6 0.0 in
  let eintr = ref 0.3 in
  let any = ref false in
  List.iter
    (function
      | Plan.Syscall_failures { rates = rs; eintr_share } ->
          any := true;
          eintr := eintr_share;
          List.iter
            (fun (c, r) ->
              let i = Category.index c in
              rates.(i) <- Float.min 1.0 (rates.(i) +. r))
            rs
      | _ -> ())
    actions;
  if !any then Some (rates, !eintr) else None

let daemon_mults actions =
  let m = ref None in
  List.iter
    (function
      | Plan.Daemon_storm d ->
          let prev =
            Option.value !m
              ~default:
                {
                  Plan.jbd2 = 1.0;
                  kswapd = 1.0;
                  load_balancer = 1.0;
                  cgroup_flusher = 1.0;
                }
          in
          m :=
            Some
              {
                Plan.jbd2 = prev.Plan.jbd2 *. d.Plan.jbd2;
                kswapd = prev.Plan.kswapd *. d.Plan.kswapd;
                load_balancer = prev.Plan.load_balancer *. d.Plan.load_balancer;
                cgroup_flusher =
                  prev.Plan.cgroup_flusher *. d.Plan.cgroup_flusher;
              }
      | _ -> ())
    actions;
  !m

let crash_schedule actions =
  List.filter_map
    (function
      | Plan.Rank_crash { rank; at_ns; restart_after_ns } ->
          Some (rank, (at_ns, restart_after_ns))
      | _ -> None)
    actions

(* --- hook installation ------------------------------------------------ *)

let arm ~env ~plan ~seed () =
  let engine = Env.engine env in
  let root = Prng.create seed in
  let crashes = crash_schedule plan.Plan.actions in
  let counters =
    {
      c_syscall = 0;
      c_preempt = 0;
      c_stall = 0;
      c_daemon = 0;
      c_ipi = 0;
      c_flush = 0;
      c_slowmem = 0;
      c_crashes = List.length crashes;
      c_drift = 0;
    }
  in
  let t = { env; the_plan = plan; counters; active = true; drift_sink = None } in
  (* 1. Transient syscall failures + the crash/restart schedule, via the
     env fault control. *)
  let syscall_errno =
    match category_rates plan.Plan.actions with
    | None -> fun ~rank:_ _spec -> None
    | Some (rates, eintr_share) ->
        let rng = Prng.split root "kfault-syscalls" in
        fun ~rank:_ (spec : Spec.t) ->
          if not t.active then None
          else
            let rate =
              List.fold_left
                (fun acc c -> Float.max acc rates.(Category.index c))
                0.0 spec.Spec.categories
            in
            if rate > 0.0 && Prng.chance rng rate then begin
              let errno =
                if Prng.chance rng eintr_share then Env.EINTR else Env.EAGAIN
              in
              counters.c_syscall <- counters.c_syscall + 1;
              inject engine
                (Printf.sprintf "syscall-%s"
                   (String.lowercase_ascii (Env.errno_name errno)))
                rate;
              Some errno
            end
            else None
  in
  (if crashes <> [] || category_rates plan.Plan.actions <> None then
     Env.set_fault_ctl env
       (Some
          {
            Env.syscall_errno;
            crash_at =
              (fun ~rank ->
                if not t.active then None
                else Option.map fst (List.assoc_opt rank crashes));
            restart_after =
              (fun ~rank ->
                if not t.active then None
                else Option.join (Option.map snd (List.assoc_opt rank crashes)));
          }));
  (* 2. Lock-holder preemption and device stalls, via the engine acquire
     hook. *)
  let preemptions =
    List.filter_map
      (function Plan.Lock_preemption p -> Some p | _ -> None)
      plan.Plan.actions
  in
  let stalls =
    List.filter_map
      (function
        | Plan.Device_stall { probability; stall_ns } ->
            Some (probability, stall_ns)
        | _ -> None)
      plan.Plan.actions
  in
  if preemptions <> [] || stalls <> [] then begin
    let rng = Prng.split root "kfault-preempt" in
    Engine.set_acquire_hook engine
      (Some
         (fun site name ->
           if t.active then
             match site with
             | Engine.Lock_site ->
                 let cls = class_of_lock name in
                 List.iter
                   (fun (p : Plan.lock_preemption) ->
                     if
                       p.Plan.lock_class = cls
                       && Prng.chance rng p.Plan.probability
                     then begin
                       counters.c_preempt <- counters.c_preempt + 1;
                       inject engine "lock-preemption" p.Plan.stretch_ns;
                       Engine.delay p.Plan.stretch_ns
                     end)
                   preemptions
             | Engine.Resource_site ->
                 List.iter
                   (fun (probability, stall_ns) ->
                     if Prng.chance rng probability then begin
                       counters.c_stall <- counters.c_stall + 1;
                       inject engine "device-stall" stall_ns;
                       Engine.delay stall_ns
                     end)
                   stalls))
  end;
  (* 3. Daemon storms: per-instance hold multipliers consulted by
     Background on every housekeeping pass. *)
  (match daemon_mults plan.Plan.actions with
  | None -> ()
  | Some m ->
      let mult_of = function
        | "jbd2" -> m.Plan.jbd2
        | "kswapd" -> m.Plan.kswapd
        | "load_balancer" -> m.Plan.load_balancer
        | "cgroup_flusher" -> m.Plan.cgroup_flusher
        | _ -> 1.0
      in
      List.iter
        (fun inst ->
          Instance.set_daemon_hold_mult inst
            (Some
               (fun daemon ->
                 if not t.active then 1.0
                 else begin
                   let mult = mult_of daemon in
                   if mult <> 1.0 then begin
                     counters.c_daemon <- counters.c_daemon + 1;
                     inject engine ("daemon-storm-" ^ daemon) mult
                   end;
                   mult
                 end)))
        (Env.instances env));
  (* 4. Periodic storm processes, one set per kernel instance.  The
     phase jitter desynchronises instances, from a per-instance split so
     instance count changes never perturb other streams. *)
  let each_instance label f =
    List.iteri
      (fun i inst ->
        let rng = Prng.split root (Printf.sprintf "kfault-%s-%d" label i) in
        Engine.spawn engine (fun () -> f inst rng))
      (Env.instances env)
  in
  List.iter
    (function
      | Plan.Ipi_storm { period_ns } ->
          each_instance "ipi" (fun inst rng ->
              let ctx =
                { Instance.core = 0; tenant = 0; key = 0; cgroup = None }
              in
              Engine.delay (Prng.float rng period_ns);
              let rec loop () =
                if t.active then begin
                  counters.c_ipi <- counters.c_ipi + 1;
                  inject engine "ipi-storm" 1.0;
                  Instance.exec_op inst ctx Ksurf_kernel.Ops.Tlb_shootdown;
                  Engine.delay period_ns;
                  loop ()
                end
              in
              loop ())
      | Plan.Cache_flush_storm { period_ns; window_ns; pressure } ->
          each_instance "flush" (fun inst rng ->
              Engine.delay (Prng.float rng period_ns);
              let rec loop () =
                if t.active then begin
                  counters.c_flush <- counters.c_flush + 1;
                  inject engine "cache-flush" pressure;
                  Instance.set_cache_pressure inst pressure;
                  Engine.delay window_ns;
                  Instance.set_cache_pressure inst 0.0;
                  Engine.delay period_ns;
                  loop ()
                end
              in
              loop ())
      | Plan.Slow_memory { period_ns; window_ns; dilation } ->
          each_instance "slowmem" (fun inst rng ->
              Engine.delay (Prng.float rng period_ns);
              let rec loop () =
                if t.active then begin
                  counters.c_slowmem <- counters.c_slowmem + 1;
                  inject engine "slow-memory" dilation;
                  Instance.set_burn_mult inst dilation;
                  Engine.delay window_ns;
                  Instance.set_burn_mult inst 1.0;
                  Engine.delay period_ns;
                  loop ()
                end
              in
              loop ())
      | Plan.Workload_drift { at_ns; shift } ->
          (* One process per drift: sleep to the trigger time, announce
             the injection, and hand the mix shift to whatever sink the
             harness registered.  Without a sink the drift still fires
             (probe-visible, counted) — the workload just ignores it. *)
          Engine.spawn engine (fun () ->
              Engine.delay at_ns;
              if t.active then begin
                counters.c_drift <- counters.c_drift + 1;
                inject engine "workload-drift" shift;
                match t.drift_sink with
                | Some sink -> sink ~shift
                | None -> ()
              end)
      | Plan.Syscall_failures _ | Plan.Daemon_storm _ | Plan.Lock_preemption _
      | Plan.Device_stall _ | Plan.Rank_crash _ ->
          ())
    plan.Plan.actions;
  t

let disarm t =
  if t.active then begin
    t.active <- false;
    Env.set_fault_ctl t.env None;
    Engine.set_acquire_hook (Env.engine t.env) None;
    List.iter
      (fun inst ->
        Instance.set_daemon_hold_mult inst None;
        Instance.set_burn_mult inst 1.0;
        Instance.set_cache_pressure inst 0.0)
      (Env.instances t.env)
  end

let set_drift_sink t sink = t.drift_sink <- sink

let stats t =
  {
    syscall_faults = t.counters.c_syscall;
    lock_preemptions = t.counters.c_preempt;
    device_stalls = t.counters.c_stall;
    daemon_storm_passes = t.counters.c_daemon;
    ipi_storms = t.counters.c_ipi;
    cache_flushes = t.counters.c_flush;
    slow_memory_windows = t.counters.c_slowmem;
    crashes_scheduled = t.counters.c_crashes;
    workload_drifts = t.counters.c_drift;
  }

let total_injections t =
  let s = stats t in
  s.syscall_faults + s.lock_preemptions + s.device_stalls
  + s.daemon_storm_passes + s.ipi_storms + s.cache_flushes
  + s.slow_memory_windows + s.workload_drifts

let plan t = t.the_plan

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>syscall faults        %d@,\
     lock preemptions      %d@,\
     device stalls         %d@,\
     daemon storm passes   %d@,\
     ipi storms            %d@,\
     cache-flush windows   %d@,\
     slow-memory windows   %d@,\
     crashes scheduled     %d@,\
     workload drifts       %d@]"
    s.syscall_faults s.lock_preemptions s.device_stalls s.daemon_storm_passes
    s.ipi_storms s.cache_flushes s.slow_memory_windows s.crashes_scheduled
    s.workload_drifts
