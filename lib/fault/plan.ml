module Category = Ksurf_kernel.Category

type syscall_failures = {
  rates : (Category.t * float) list;
  eintr_share : float;
}

type daemon_storm = {
  jbd2 : float;
  kswapd : float;
  load_balancer : float;
  cgroup_flusher : float;
}

type lock_preemption = {
  lock_class : string;
  probability : float;
  stretch_ns : float;
}

type rank_crash = {
  rank : int;
  at_ns : float;
  restart_after_ns : float option;
}

type action =
  | Syscall_failures of syscall_failures
  | Daemon_storm of daemon_storm
  | Lock_preemption of lock_preemption
  | Ipi_storm of { period_ns : float }
  | Cache_flush_storm of {
      period_ns : float;
      window_ns : float;
      pressure : float;
    }
  | Slow_memory of { period_ns : float; window_ns : float; dilation : float }
  | Device_stall of { probability : float; stall_ns : float }
  | Rank_crash of rank_crash
  | Workload_drift of { at_ns : float; shift : float }

type t = { name : string; actions : action list }

let empty = { name = "empty"; actions = [] }

(* --- dose scaling ----------------------------------------------------- *)

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

(* Multipliers interpolate towards stock (1.0) instead of multiplying,
   so half a dose of a 4x storm is a 2.5x storm, and dose 0 is stock. *)
let lerp_mult k m = 1.0 +. (k *. (m -. 1.0))

let scale_action k = function
  | Syscall_failures { rates; eintr_share } ->
      Some
        (Syscall_failures
           {
             rates = List.map (fun (c, r) -> (c, clamp01 (r *. k))) rates;
             eintr_share;
           })
  | Daemon_storm d ->
      Some
        (Daemon_storm
           {
             jbd2 = lerp_mult k d.jbd2;
             kswapd = lerp_mult k d.kswapd;
             load_balancer = lerp_mult k d.load_balancer;
             cgroup_flusher = lerp_mult k d.cgroup_flusher;
           })
  | Lock_preemption p ->
      Some
        (Lock_preemption
           {
             p with
             probability = clamp01 (p.probability *. k);
             stretch_ns = p.stretch_ns *. k;
           })
  | Ipi_storm { period_ns } ->
      if k <= 0.0 then None else Some (Ipi_storm { period_ns = period_ns /. k })
  | Cache_flush_storm s ->
      Some (Cache_flush_storm { s with pressure = s.pressure *. k })
  | Slow_memory s -> Some (Slow_memory { s with dilation = lerp_mult k s.dilation })
  | Device_stall { probability; stall_ns } ->
      Some
        (Device_stall
           { probability = clamp01 (probability *. k); stall_ns = stall_ns *. k })
  | Rank_crash c -> if k <= 0.0 then None else Some (Rank_crash c)
  | Workload_drift { at_ns; shift } ->
      (* The dose knob scales how far the syscall mix shifts, not when:
         a drift that never moves the mix (k = 0) is no drift at all. *)
      if k <= 0.0 then None
      else Some (Workload_drift { at_ns; shift = clamp01 (shift *. k) })

let scale k t =
  if k < 0.0 then invalid_arg "Plan.scale: negative intensity";
  {
    name = Printf.sprintf "%s@%g" t.name k;
    (* Zero dose injects literally nothing: no actions, so not even
       no-op storm windows tick the injection counters. *)
    actions =
      (if k = 0.0 then [] else List.filter_map (scale_action k) t.actions);
  }

(* --- serialisation ---------------------------------------------------- *)

let action_to_string = function
  | Syscall_failures { rates; eintr_share } ->
      let rates =
        List.map
          (fun (c, r) -> Printf.sprintf "%s=%g" (Category.to_string c) r)
          rates
      in
      Printf.sprintf "syscall-failures %s eintr-share=%g"
        (String.concat " " rates) eintr_share
  | Daemon_storm { jbd2; kswapd; load_balancer; cgroup_flusher } ->
      Printf.sprintf
        "daemon-storm jbd2=%g kswapd=%g load-balancer=%g cgroup-flusher=%g"
        jbd2 kswapd load_balancer cgroup_flusher
  | Lock_preemption { lock_class; probability; stretch_ns } ->
      Printf.sprintf "lock-preemption class=%s prob=%g stretch=%g" lock_class
        probability stretch_ns
  | Ipi_storm { period_ns } -> Printf.sprintf "ipi-storm period=%g" period_ns
  | Cache_flush_storm { period_ns; window_ns; pressure } ->
      Printf.sprintf "cache-flush period=%g window=%g pressure=%g" period_ns
        window_ns pressure
  | Slow_memory { period_ns; window_ns; dilation } ->
      Printf.sprintf "slow-memory period=%g window=%g dilation=%g" period_ns
        window_ns dilation
  | Device_stall { probability; stall_ns } ->
      Printf.sprintf "device-stall prob=%g stall=%g" probability stall_ns
  | Rank_crash { rank; at_ns; restart_after_ns } -> (
      match restart_after_ns with
      | None -> Printf.sprintf "rank-crash rank=%d at=%g" rank at_ns
      | Some r -> Printf.sprintf "rank-crash rank=%d at=%g restart=%g" rank at_ns r)
  | Workload_drift { at_ns; shift } ->
      Printf.sprintf "workload-drift at=%g shift=%g" at_ns shift

let to_string t =
  String.concat "\n"
    (Printf.sprintf "name %s" t.name
    :: List.map action_to_string t.actions)
  ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Parser for the line format: "keyword key=value ..." *)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_kv word =
  match String.index_opt word '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" word)
  | Some i ->
      Ok
        ( String.sub word 0 i,
          String.sub word (i + 1) (String.length word - i - 1) )

let parse_float name v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" name v)

let parse_int name v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" name v)

let ( let* ) = Result.bind

let kvs_of words =
  List.fold_left
    (fun acc w ->
      let* acc = acc in
      let* kv = parse_kv w in
      Ok (kv :: acc))
    (Ok []) words
  |> Result.map List.rev

let find_float kvs key ~default =
  match List.assoc_opt key kvs with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing %s=" key))
  | Some v -> parse_float key v

let parse_action line =
  match split_words line with
  | [] -> Ok None
  | keyword :: rest -> (
      let* kvs = kvs_of rest in
      match keyword with
      | "syscall-failures" ->
          let* eintr_share =
            find_float kvs "eintr-share" ~default:(Some 0.3)
          in
          let* rates =
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                if k = "eintr-share" then Ok acc
                else
                  match Category.of_string k with
                  | None -> Error (Printf.sprintf "unknown category %S" k)
                  | Some c ->
                      let* r = parse_float k v in
                      Ok ((c, r) :: acc))
              (Ok []) kvs
          in
          Ok (Some (Syscall_failures { rates = List.rev rates; eintr_share }))
      | "daemon-storm" ->
          let* jbd2 = find_float kvs "jbd2" ~default:(Some 1.0) in
          let* kswapd = find_float kvs "kswapd" ~default:(Some 1.0) in
          let* load_balancer =
            find_float kvs "load-balancer" ~default:(Some 1.0)
          in
          let* cgroup_flusher =
            find_float kvs "cgroup-flusher" ~default:(Some 1.0)
          in
          Ok (Some (Daemon_storm { jbd2; kswapd; load_balancer; cgroup_flusher }))
      | "lock-preemption" ->
          let* lock_class =
            match List.assoc_opt "class" kvs with
            | Some c -> Ok c
            | None -> Error "lock-preemption: missing class="
          in
          let* probability = find_float kvs "prob" ~default:None in
          let* stretch_ns = find_float kvs "stretch" ~default:None in
          Ok (Some (Lock_preemption { lock_class; probability; stretch_ns }))
      | "ipi-storm" ->
          let* period_ns = find_float kvs "period" ~default:None in
          Ok (Some (Ipi_storm { period_ns }))
      | "cache-flush" ->
          let* period_ns = find_float kvs "period" ~default:None in
          let* window_ns = find_float kvs "window" ~default:None in
          let* pressure = find_float kvs "pressure" ~default:None in
          Ok (Some (Cache_flush_storm { period_ns; window_ns; pressure }))
      | "slow-memory" ->
          let* period_ns = find_float kvs "period" ~default:None in
          let* window_ns = find_float kvs "window" ~default:None in
          let* dilation = find_float kvs "dilation" ~default:None in
          Ok (Some (Slow_memory { period_ns; window_ns; dilation }))
      | "device-stall" ->
          let* probability = find_float kvs "prob" ~default:None in
          let* stall_ns = find_float kvs "stall" ~default:None in
          Ok (Some (Device_stall { probability; stall_ns }))
      | "rank-crash" ->
          let* rank =
            match List.assoc_opt "rank" kvs with
            | Some v -> parse_int "rank" v
            | None -> Error "rank-crash: missing rank="
          in
          let* at_ns = find_float kvs "at" ~default:None in
          let* restart_after_ns =
            match List.assoc_opt "restart" kvs with
            | None -> Ok None
            | Some v -> Result.map Option.some (parse_float "restart" v)
          in
          Ok (Some (Rank_crash { rank; at_ns; restart_after_ns }))
      | "workload-drift" ->
          let* at_ns = find_float kvs "at" ~default:None in
          let* shift = find_float kvs "shift" ~default:None in
          Ok (Some (Workload_drift { at_ns; shift }))
      | other -> Error (Printf.sprintf "unknown fault action %S" other))

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go name actions = function
    | [] -> Ok { name; actions = List.rev actions }
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go name actions rest
        else
          match split_words line with
          | "name" :: n :: _ -> go n actions rest
          | _ -> (
              match parse_action line with
              | Error e -> Error (Printf.sprintf "%S: %s" line e)
              | Ok None -> go name actions rest
              | Ok (Some a) -> go name (a :: actions) rest))
  in
  go "unnamed" [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* --- presets ----------------------------------------------------------

   Magnitudes are chosen so the "mixed" preset at intensity 1.0 visibly
   thickens native tails at varbench timescales (µs-scale syscalls,
   ms-scale daemon passes) without drowning the stock signal. *)

let syscalls_preset =
  {
    name = "syscalls";
    actions =
      [
        Syscall_failures
          {
            rates =
              [
                (Category.File_io, 0.03);
                (Category.Fs_mgmt, 0.02);
                (Category.Ipc, 0.02);
                (Category.Process, 0.01);
              ];
            eintr_share = 0.3;
          };
      ];
  }

let storms_preset =
  {
    name = "storms";
    actions =
      [
        Daemon_storm
          { jbd2 = 6.0; kswapd = 4.0; load_balancer = 3.0; cgroup_flusher = 2.0 };
        Ipi_storm { period_ns = 150_000.0 };
        Cache_flush_storm
          { period_ns = 2_000_000.0; window_ns = 400_000.0; pressure = 0.25 };
      ];
  }

let preempt_preset =
  {
    name = "preempt";
    actions =
      [
        Lock_preemption
          { lock_class = "journal"; probability = 0.08; stretch_ns = 30_000.0 };
        Lock_preemption
          { lock_class = "zone"; probability = 0.05; stretch_ns = 20_000.0 };
        Device_stall { probability = 0.04; stall_ns = 60_000.0 };
      ];
  }

let mixed_preset =
  {
    name = "mixed";
    actions =
      syscalls_preset.actions @ storms_preset.actions @ preempt_preset.actions
      @ [
          Slow_memory
            {
              period_ns = 4_000_000.0;
              window_ns = 800_000.0;
              dilation = 1.6;
            };
        ];
  }

let crashy_preset =
  {
    name = "crashy";
    actions =
      mixed_preset.actions
      @ [
          Rank_crash
            { rank = 1; at_ns = 3_000_000.0; restart_after_ns = Some 1_000_000.0 };
        ];
  }

let drift_preset =
  (* At intensity 1.0 a quarter of post-drift calls come from subsystems
     the audited profile never saw — enough to blow past any sane
     denial-rate threshold without making the pre-drift phase unusable
     for learning.  [at_ns] sits well after the adaptive controller's
     audit window at driftbench epoch cadences. *)
  {
    name = "drift";
    actions = [ Workload_drift { at_ns = 2_000_000.0; shift = 0.25 } ];
  }

let presets =
  [
    ("syscalls", syscalls_preset);
    ("storms", storms_preset);
    ("preempt", preempt_preset);
    ("mixed", { mixed_preset with name = "mixed" });
    ("crashy", { crashy_preset with name = "crashy" });
    ("drift", drift_preset);
  ]

let preset name = List.assoc_opt name presets
