(** Typed fault plans: the kfault injection language.

    A plan is a named list of fault actions; {!Kfault.arm} compiles it
    into injection hooks on a deployed environment.  Plans are
    first-class data: they serialise to a line-oriented text format
    ({!to_string} / {!of_string}), ship as named {!presets}, and scale
    along a single intensity axis ({!scale}) — the dose knob of the
    dose–response experiment.

    Everything a plan injects is sampled from streams split off one
    seed, so the same (plan, seed) pair replays the same faults at the
    same virtual times. *)

type syscall_failures = {
  rates : (Ksurf_kernel.Category.t * float) list;
      (** per-category probability that a call fails transiently *)
  eintr_share : float;
      (** fraction of injected failures reported as EINTR (rest EAGAIN) *)
}

type daemon_storm = {
  jbd2 : float;
  kswapd : float;
  load_balancer : float;
  cgroup_flusher : float;
}
(** Lock-hold multipliers per background daemon; 1.0 = stock. *)

type lock_preemption = {
  lock_class : string;  (** lockdep-style class, e.g. ["journal"] *)
  probability : float;  (** per-acquisition stretch probability *)
  stretch_ns : float;  (** critical-section extension when it fires *)
}

type rank_crash = {
  rank : int;
  at_ns : float;  (** virtual time of the crash *)
  restart_after_ns : float option;  (** downtime; [None] = permanent *)
}

type action =
  | Syscall_failures of syscall_failures
  | Daemon_storm of daemon_storm
  | Lock_preemption of lock_preemption
  | Ipi_storm of { period_ns : float }
      (** one extra TLB shootdown per period per kernel instance *)
  | Cache_flush_storm of {
      period_ns : float;
      window_ns : float;
      pressure : float;
    }  (** periodically depress software-cache hit rates for a window *)
  | Slow_memory of {
      period_ns : float;
      window_ns : float;
      dilation : float;
    }  (** periodically dilate in-kernel CPU time (slow memory channel) *)
  | Device_stall of { probability : float; stall_ns : float }
      (** stretch block-device occupancy at acquisition time *)
  | Rank_crash of rank_crash
  | Workload_drift of { at_ns : float; shift : float }
      (** at virtual time [at_ns], shift fraction [shift] of the
          workload's syscall mix onto subsystems outside its learned
          profile.  The fault layer only announces the drift — the
          harness registers a sink ({!Kfault.set_drift_sink}) that
          actually mutates its program mix, so any workload generator
          can opt in. *)

type t = { name : string; actions : action list }

val empty : t

val scale : float -> t -> t
(** [scale k plan] is the dose knob: probabilities and rates multiply
    by [k] (clamped to 1), hold/dilation multipliers interpolate as
    [1 + k*(m-1)], storm periods divide by [k], stretch/stall sizes and
    cache pressure multiply by [k].  [k = 0] yields a plan that injects
    nothing; crash schedules are kept verbatim for [k > 0] (a crash has
    no meaningful half-dose) and dropped at [k = 0].  Workload drifts
    scale their mix shift (clamped to 1) and keep their trigger time. *)

val to_string : t -> string
(** One action per line; round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the text format.  Blank lines and [#] comments are ignored;
    the first [name <string>] line names the plan. *)

val load : string -> (t, string) result
(** Read a plan file. *)

val presets : (string * t) list
(** Named built-in plans: ["syscalls"], ["storms"], ["preempt"],
    ["mixed"] (every mechanism except crashes), ["crashy"] (mixed plus
    a crash/restart schedule), ["drift"] (a mid-run workload syscall-mix
    shift — the kadapt dose–response driver). *)

val preset : string -> t option
val pp : Format.formatter -> t -> unit
