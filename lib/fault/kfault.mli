(** The kfault compiler: arm a {!Plan} against a deployed environment.

    {!arm} installs every injection hook the plan needs — the env-level
    syscall fault control, the engine-level Lock/Resource acquire hook,
    per-instance daemon-hold multipliers, and background storm processes
    (IPI, cache-flush, slow-memory) — and returns a handle with
    injection counters.

    Determinism: all injected randomness is drawn from streams split
    off [seed] by component label, and consumed in simulation event
    order, so the same (plan, seed, scenario) triple replays the exact
    same faults.  Every firing is reported through the engine probe
    stream as {!Ksurf_sim.Engine.Injected}, which puts injections under
    the ksan determinism hash.

    One armed kfault per engine: arming installs the single engine
    acquire hook and the env fault control.  {!disarm} restores stock
    behaviour (storm processes exit at their next wake-up). *)

type stats = {
  syscall_faults : int;  (** EAGAIN/EINTR injections delivered *)
  lock_preemptions : int;  (** critical sections stretched *)
  device_stalls : int;  (** block-device occupancies stretched *)
  daemon_storm_passes : int;  (** daemon passes run with a multiplier *)
  ipi_storms : int;  (** extra TLB shootdowns executed *)
  cache_flushes : int;  (** cache-pressure windows opened *)
  slow_memory_windows : int;  (** burn-dilation windows opened *)
  crashes_scheduled : int;  (** ranks with a crash time in the plan *)
  workload_drifts : int;  (** workload syscall-mix shifts delivered *)
}

type t

val arm : env:Ksurf_env.Env.t -> plan:Plan.t -> seed:int -> unit -> t
(** Compile [plan] into live hooks on [env] and its engine/instances.
    Storm processes are spawned at the current virtual time. *)

val disarm : t -> unit
(** Remove every hook and restore stock multipliers/pressure. *)

val set_drift_sink : t -> (shift:float -> unit) option -> unit
(** Register the harness callback a [Workload_drift] action invokes
    when it fires: [sink ~shift] should move fraction [shift] of the
    workload's subsequent syscall mix outside its learned profile.
    Without a sink the drift still fires probe-visibly and is counted —
    the workload just doesn't move. *)

val stats : t -> stats
val total_injections : t -> int
val plan : t -> Plan.t
val pp_stats : Format.formatter -> stats -> unit
